package jobq

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildJournal produces a realistic journal via the public API: three
// jobs across the whole lifecycle (done with result, dead-lettered,
// running with a checkpoint marker).
func buildJournal(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	q, _, err := Open(dir, Options{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := q.Enqueue("acme", json.RawMessage(`{"trace":"tpf-airline"}`))
	b, _ := q.Enqueue("globex", json.RawMessage(`{"trace":"zos-lspr-ims"}`))
	c, _ := q.Enqueue("acme", json.RawMessage(`{"trace":"zos-trade6"}`))
	ctx := context.Background()
	if _, err := q.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := q.Done(a.ID, json.RawMessage(`{"cpi":0.91}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Fail(b.ID, "poisoned"); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := q.MarkCheckpoint(c.ID, 80_000); err != nil {
		t.Fatal(err)
	}
	q.Close()
	data, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReplayTruncatedAtEveryOffset is the crash-recovery property test:
// for EVERY byte offset k, replaying the first k bytes of a valid
// journal either succeeds cleanly (k lands on a record boundary) or
// reports ErrTruncated — never a panic, never ErrCorrupt, never a
// silent half-applied record. The salvaged prefix must be monotone:
// longer prefixes never recover fewer jobs.
func TestReplayTruncatedAtEveryOffset(t *testing.T) {
	data := buildJournal(t)
	if len(data) < 100 {
		t.Fatalf("journal only %d bytes", len(data))
	}
	cleanState, _, err := replayJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("full journal does not replay: %v", err)
	}
	prevJobs := -1
	boundaries := 0
	for k := 0; k <= len(data); k++ {
		st, off, err := replayJournal(bytes.NewReader(data[:k]))
		if err == nil {
			boundaries++
			if off != int64(k) {
				t.Fatalf("offset %d: clean replay but salvage offset %d", k, off)
			}
		} else if !errors.Is(err, ErrTruncated) {
			t.Fatalf("offset %d: error %v, want ErrTruncated", k, err)
		} else if st != nil && off > int64(k) {
			t.Fatalf("offset %d: salvage offset %d beyond the data", k, off)
		}
		jobs := 0
		if st != nil {
			jobs = len(st.jobs)
		}
		if jobs < prevJobs && err == nil {
			t.Fatalf("offset %d: clean replay recovered fewer jobs (%d) than a shorter prefix (%d)", k, jobs, prevJobs)
		}
		if jobs > prevJobs {
			prevJobs = jobs
		}
	}
	if prevJobs != len(cleanState.jobs) {
		t.Fatalf("longest prefix recovered %d jobs, full journal has %d", prevJobs, len(cleanState.jobs))
	}
	// Sanity: record boundaries exist (header + every record end).
	if boundaries < 5 {
		t.Fatalf("only %d clean truncation points; framing suspect", boundaries)
	}
}

// TestOpenRecoversTruncatedJournal: the Queue-level path — a torn tail
// is reported in Recovery.Damage, the intact prefix loads, and the
// compaction immediately rewrites a clean journal.
func TestOpenRecoversTruncatedJournal(t *testing.T) {
	data := buildJournal(t)
	for _, cut := range []int{1, 7, len(data) / 3, len(data) - 3, len(data) - 1} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		q, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open refused a torn journal: %v", cut, err)
		}
		if rec.Damage == nil {
			t.Fatalf("cut %d: damage not reported", cut)
		}
		if !errors.Is(rec.Damage, ErrTruncated) {
			t.Fatalf("cut %d: damage %v, want ErrTruncated", cut, rec.Damage)
		}
		// The rewritten journal must be clean: reopen sees no damage and
		// the same jobs.
		jobs := len(q.List())
		q.Close()
		q2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if rec2.Damage != nil {
			t.Fatalf("cut %d: compacted journal still damaged: %v", cut, rec2.Damage)
		}
		if len(q2.List()) != jobs {
			t.Fatalf("cut %d: reopen lost jobs: %d vs %d", cut, len(q2.List()), jobs)
		}
		q2.Close()
	}
}

// TestReplayRejectsBitRot: a flipped payload byte in a complete record
// is a checksum mismatch — ErrCorrupt, not a tear — and the prefix
// before it still loads.
func TestReplayRejectsBitRot(t *testing.T) {
	data := buildJournal(t)
	// Find the second record's payload and flip a byte in it: the first
	// record must survive, the rest is refused.
	off := len(journalMagic)
	l0 := binary.LittleEndian.Uint32(data[off:])
	second := off + 8 + int(l0)
	corrupt := append([]byte(nil), data...)
	corrupt[second+8] ^= 0x40
	st, salvage, err := replayJournal(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if salvage != int64(second) {
		t.Errorf("salvage offset %d, want %d", salvage, second)
	}
	if len(st.jobs) != 1 {
		t.Errorf("salvaged %d jobs, want 1", len(st.jobs))
	}
}

func TestReplayRejectsWrongMagic(t *testing.T) {
	_, _, err := replayJournal(bytes.NewReader([]byte("ZBPT\x01whatever")))
	if err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("wrong magic: %v, want a hard non-truncation error", err)
	}
}

// TestReplayBoundsRecordLength: a length field claiming more than
// maxRecordBytes is corruption, refused without allocating it.
func TestReplayBoundsRecordLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(journalMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecordBytes+1)
	buf.Write(hdr[:])
	buf.Write(bytes.Repeat([]byte{0}, 64))
	_, _, err := replayJournal(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized record: %v, want ErrCorrupt", err)
	}
}

// TestJournalGrowthIsAppendOnly: every mutating call appends; no call
// rewrites earlier bytes. Detected by prefix comparison across a
// sequence of operations.
func TestJournalGrowthIsAppendOnly(t *testing.T) {
	dir := t.TempDir()
	q, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	path := filepath.Join(dir, JournalName)
	read := func() []byte {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	prev := read()
	step := func(what string, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		cur := read()
		if len(cur) <= len(prev) || !bytes.Equal(cur[:len(prev)], prev) {
			t.Fatalf("%s: journal not append-only (%d -> %d bytes)", what, len(prev), len(cur))
		}
		prev = cur
	}
	var id string
	step("enqueue", func() error {
		j, err := q.Enqueue("t", json.RawMessage(fmt.Sprintf(`{"k":%d}`, 1)))
		id = j.ID
		return err
	})
	step("start", func() error { _, err := q.Next(context.Background()); return err })
	step("checkpoint", func() error { return q.MarkCheckpoint(id, 10) })
	step("done", func() error { return q.Done(id, json.RawMessage(`{}`)) })
}
