package sim

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

// layoutUnits builds a reduced layout-gate unit set: a few Table 4
// profiles with interval snapshots armed, so snapshot boundaries are
// part of what the two layouts must agree on.
func layoutUnits(profiles, instructions int) []Unit {
	params := engine.DefaultParams()
	params.WarmupInstructions = 2_000
	params.SnapshotInterval = 5_000
	var units []Unit
	for _, p := range workload.Table4Profiles(instructions)[:profiles] {
		units = append(units, ProfileUnit(p, core.DefaultConfig(), params, ConfigBTB2))
	}
	return units
}

// TestVerifyLayoutDifferential runs the packed-vs-struct layout gate on
// a reduced unit set: parallel packed against serial struct oracle,
// plus the mid-run ZBPC checkpoint round-trip with cross-layout
// resumes. Zero mismatches proves the packed layout is observationally
// identical to the struct layout, persisted mid-run state included.
func TestVerifyLayoutDifferential(t *testing.T) {
	units := layoutUnits(3, 12_000)
	mismatches, err := VerifyLayoutDifferential(context.Background(), 2, units, 6_000)
	if err != nil {
		t.Fatalf("layout gate failed: %v", err)
	}
	if len(mismatches) != 0 {
		t.Fatalf("layout gate reported %d mismatches:\n%s", len(mismatches), strings.Join(mismatches, "\n"))
	}
}

// TestVerifyLayoutDifferentialFullSweep is the full 13-workload x
// 3-seed battery the diffgate experiment ships, at reduced trace
// length.
func TestVerifyLayoutDifferentialFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("layout gate full sweep in -short mode")
	}
	params := engine.DefaultParams()
	params.WarmupInstructions = 2_000
	params.SnapshotInterval = 5_000
	var units []Unit
	for _, p := range workload.Table4Profiles(15_000) {
		for s, seed := range []int64{p.Seed, p.Seed + 101, p.Seed + 9973} {
			pp := p
			pp.Seed = seed
			pp.Name = fmt.Sprintf("%s/seed%d", p.Name, s)
			units = append(units, ProfileUnit(pp, core.DefaultConfig(), params, ConfigBTB2))
		}
	}
	mismatches, err := VerifyLayoutDifferential(context.Background(), 0, units, 7_500)
	if err != nil {
		t.Fatalf("layout gate failed: %v", err)
	}
	if len(mismatches) != 0 {
		t.Fatalf("layout gate reported %d mismatches across %d units:\n%s",
			len(mismatches), len(units), strings.Join(mismatches, "\n"))
	}
}

// TestLayoutGateRejectsUnreachableCheckpoint: an interval past the end
// of the trace means the checkpoint leg proved nothing — that must be
// an error, not a silent pass.
func TestLayoutGateRejectsUnreachableCheckpoint(t *testing.T) {
	units := layoutUnits(1, 8_000)
	_, err := VerifyLayoutDifferential(context.Background(), 1, units, 1_000_000)
	if err == nil {
		t.Fatal("layout gate accepted a checkpoint interval past the end of the run")
	}
}

// TestFaultStudyLayoutEquivalence: the soft-error study must produce
// identical points under both storage layouts for identical seeds —
// the fault model strikes logical payload bits, so a flip that lands
// in a packed word must corrupt exactly the field the struct layout
// corrupts, and parity must detect and invalidate identically.
func TestFaultStudyLayoutEquivalence(t *testing.T) {
	prof := workload.Table4Profiles(15_000)[2]
	params := engine.DefaultParams()
	params.WarmupInstructions = 2_000
	rates := []float64{200, 2_000}

	packed, err := FaultStudyConfig(prof, core.DefaultConfig(), params, rates)
	if err != nil {
		t.Fatalf("packed fault study: %v", err)
	}
	structCfg := core.DefaultConfig()
	structCfg.StructLayout = true
	ref, err := FaultStudyConfig(prof, structCfg, params, rates)
	if err != nil {
		t.Fatalf("struct fault study: %v", err)
	}
	if len(packed) != len(ref) {
		t.Fatalf("point counts differ: %d vs %d", len(packed), len(ref))
	}
	injected := false
	for i := range packed {
		if packed[i] != ref[i] {
			t.Errorf("point %d (rate %g, %v) diverged:\npacked %+v\nstruct %+v",
				i, packed[i].RatePerM, packed[i].Protection, packed[i], ref[i])
		}
		if packed[i].Stats.Injected > 0 {
			injected = true
		}
	}
	if !injected {
		t.Fatal("no faults injected anywhere — the equivalence check proved nothing")
	}
}

// TestStructLayoutUnits: the helper must flip the layout knob on the
// copies and leave the originals untouched.
func TestStructLayoutUnits(t *testing.T) {
	units := layoutUnits(2, 8_000)
	ref := StructLayoutUnits(units)
	for i := range units {
		if units[i].Config.StructLayout {
			t.Fatalf("unit %d: original mutated", i)
		}
		if !ref[i].Config.StructLayout {
			t.Fatalf("unit %d: copy not flipped to struct layout", i)
		}
		if ref[i].Label != units[i].Label {
			t.Fatalf("unit %d: label changed", i)
		}
	}
}
