package sim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// schedTestUnits builds n small units over rotating Table 4 profiles.
func schedTestUnits(n int) []Unit {
	params := engine.DefaultParams()
	params.WarmupInstructions = 0
	profiles := workload.Table4Profiles(4_000)
	units := make([]Unit, 0, n)
	for i := 0; i < n; i++ {
		units = append(units, ProfileUnit(profiles[i%len(profiles)], core.DefaultConfig(), params, ConfigBTB2))
	}
	return units
}

// TestRunUnitsMatchesSerialOrder checks results land by unit index for
// every worker count, including worker counts above the unit count.
func TestRunUnitsMatchesSerialOrder(t *testing.T) {
	units := schedTestUnits(7)
	want, err := RunUnitsSerial(units)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, len(units), len(units) + 5, runtime.GOMAXPROCS(0)} {
		got, err := RunUnits(context.Background(), workers, units)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i].Trace != want[i].Trace || got[i].Cycles != want[i].Cycles ||
				got[i].Instructions != want[i].Instructions {
				t.Fatalf("workers=%d: unit %d landed wrong: got %s want %s",
					workers, i, got[i].String(), want[i].String())
			}
		}
	}
}

// TestRunUnitsPanicIsolation proves a panicking unit costs only its own
// slot: its Result stays zero, the error names it, every other unit
// completes.
func TestRunUnitsPanicIsolation(t *testing.T) {
	units := schedTestUnits(6)
	units[2].Label = "poison"
	units[2].NewSource = func() trace.Source { panic("synthetic shard failure") }
	for _, workers := range []int{1, 3} {
		res, err := RunUnits(context.Background(), workers, units)
		if err == nil {
			t.Fatalf("workers=%d: poisoned unit reported no error", workers)
		}
		if !strings.Contains(err.Error(), "unit 2 (poison) panicked") ||
			!strings.Contains(err.Error(), "synthetic shard failure") {
			t.Fatalf("workers=%d: error does not identify the failing unit: %v", workers, err)
		}
		if res[2].Instructions != 0 {
			t.Fatalf("workers=%d: poisoned slot carries a result", workers)
		}
		for i := range units {
			if i != 2 && res[i].Instructions == 0 {
				t.Fatalf("workers=%d: healthy unit %d lost its result", workers, i)
			}
		}
	}
}

// TestRunUnitsCancellation proves a canceled context stops new units
// from starting and reports every abandoned unit.
func TestRunUnitsCancellation(t *testing.T) {
	units := schedTestUnits(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any unit runs
	for _, workers := range []int{1, 2} {
		res, err := RunUnits(ctx, workers, units)
		if err == nil {
			t.Fatalf("workers=%d: canceled run reported no error", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error does not wrap context.Canceled: %v", workers, err)
		}
		for i := range res {
			if res[i].Instructions != 0 {
				t.Fatalf("workers=%d: unit %d ran after cancellation", workers, i)
			}
		}
	}
}

// TestRunUnitsStatsAccounting checks the merged per-worker scheduler
// registries add up: every unit accounted to exactly one worker, total
// simulated instructions matching the results.
func TestRunUnitsStatsAccounting(t *testing.T) {
	units := schedTestUnits(9)
	res, stats, err := RunUnitsStats(context.Background(), 3, units)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 3 || stats.Units != len(units) {
		t.Fatalf("stats header %+v", stats)
	}
	var wantInsts int64
	for i := range res {
		wantInsts += res[i].Instructions
	}
	if got := stats.Metrics.Counter("sched_units_run_total"); got != int64(len(units)) {
		t.Errorf("sched_units_run_total = %d, want %d", got, len(units))
	}
	if got := stats.Metrics.Counter("sched_instructions_total"); got != wantInsts {
		t.Errorf("sched_instructions_total = %d, want %d", got, wantInsts)
	}
	if stats.Steals != stats.Metrics.Counter("sched_units_stolen_total") {
		t.Errorf("Steals field %d disagrees with merged counter %d",
			stats.Steals, stats.Metrics.Counter("sched_units_stolen_total"))
	}
}

// TestRunUnitsStealing forces an unbalanced initial split (one worker's
// block holds all the slow units) and checks work actually migrates.
// With 2 workers and an initial contiguous split, steals must occur for
// the run to balance; zero steals across many repetitions would mean
// the deque logic is dead code.
func TestRunUnitsStealing(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core environment cannot exercise concurrent stealing reliably")
	}
	units := schedTestUnits(16)
	steals := int64(0)
	for try := 0; try < 5 && steals == 0; try++ {
		_, stats, err := RunUnitsStats(context.Background(), 2, units)
		if err != nil {
			t.Fatal(err)
		}
		steals += stats.Steals
	}
	if steals == 0 {
		t.Log("no steals observed; acceptable on a loaded machine but worth noticing")
	}
}

// TestRunUnitsEmpty covers the degenerate inputs.
func TestRunUnitsEmpty(t *testing.T) {
	res, stats, err := RunUnitsStats(context.Background(), 4, nil)
	if err != nil || len(res) != 0 || stats.Units != 0 {
		t.Fatalf("empty unit set: res=%d stats=%+v err=%v", len(res), stats, err)
	}
}
