package sim

import (
	"reflect"
	"testing"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/workload"
)

func faultStudyProfile() workload.Profile {
	return workload.Profile{
		Name: "fault-study", UniqueBranches: 4_000, TakenFraction: 0.62,
		Instructions: 80_000, HotFraction: 0.2, WindowFunctions: 16,
		CallsPerTransaction: 4, Seed: 17,
	}
}

func fastStudyParams() engine.Params {
	p := engine.DefaultParams()
	p.WarmupInstructions = 0
	return p
}

func TestFaultStudyShape(t *testing.T) {
	rates := []float64{10, 1000}
	pts, err := FaultStudy(faultStudyProfile(), fastStudyParams(), rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(rates)*2 {
		t.Fatalf("got %d points, want %d (rates x protections)", len(pts), len(rates)*2)
	}
	for i, pt := range pts {
		wantRate := rates[i/2]
		wantProt := []fault.Protection{fault.Unprotected, fault.Parity}[i%2]
		if pt.RatePerM != wantRate || pt.Protection != wantProt {
			t.Errorf("point %d is (%g, %s), want (%g, %s)",
				i, pt.RatePerM, pt.Protection, wantRate, wantProt)
		}
		if pt.CPI <= 0 {
			t.Errorf("point %d: non-positive CPI %v", i, pt.CPI)
		}
		if pt.Stats.Injected == 0 {
			t.Errorf("point %d: rate %g injected no faults", i, pt.RatePerM)
		}
		switch pt.Protection {
		case fault.Unprotected:
			if pt.Stats.Detected != 0 || pt.Stats.Recovered != 0 {
				t.Errorf("point %d: unprotected run detected faults: %+v", i, pt.Stats)
			}
		case fault.Parity:
			if pt.Stats.Recovered != pt.Stats.Detected {
				t.Errorf("point %d: recovered %d != detected %d",
					i, pt.Stats.Recovered, pt.Stats.Detected)
			}
			if pt.Stats.Silent != 0 {
				t.Errorf("point %d: parity run has %d silent corruptions", i, pt.Stats.Silent)
			}
		}
	}
}

// TestFaultStudyDeterministic pins the acceptance criterion that the
// degradation table is bit-for-bit reproducible with a fixed seed, even
// though the study's shards run on arbitrary goroutines.
func TestFaultStudyDeterministic(t *testing.T) {
	rates := []float64{100}
	a, err := FaultStudy(faultStudyProfile(), fastStudyParams(), rates)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultStudy(faultStudyProfile(), fastStudyParams(), rates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical studies produced different tables:\n%+v\n%+v", a, b)
	}
}
