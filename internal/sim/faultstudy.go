package sim

import (
	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/workload"
)

// FaultPoint is one row of the soft-error degradation study: the
// two-level configuration run under one base fault rate and one
// protection model.
type FaultPoint struct {
	// RatePerM is the base injection rate (faults per million valid
	// entry reads); per-structure rates derive from it via
	// fault.ZEC12Rates.
	RatePerM   float64
	Protection fault.Protection

	CPI     float64
	BadRate float64 // bad branch outcomes, percent of all outcomes

	// DeltaCPIPct is the CPI degradation relative to the fault-free run
	// of the same configuration (positive = slower under faults).
	DeltaCPIPct float64

	// Stats aggregates injected/detected/recovered/silent across all
	// structures for the run.
	Stats fault.Stats
}

// FaultStudy measures how predictor accuracy and CPI degrade as the
// soft-error rate rises, under both protection models. For each rate in
// rates it runs the shipping two-level configuration twice — unprotected
// (silent corruption propagates) and parity (detect on read, invalidate,
// let the semi-exclusive BTB2 refetch) — plus one fault-free reference
// run that anchors DeltaCPIPct. The fault seed is the workload seed, so
// a fixed profile reproduces the same strike sites run after run.
//
// Points are ordered rate-major (unprotected then parity within a rate);
// failed shards stay zero-valued and surface in the returned error.
func FaultStudy(profile workload.Profile, params engine.Params, rates []float64) ([]FaultPoint, error) {
	return FaultStudyConfig(profile, core.DefaultConfig(), params, rates)
}

// FaultStudyConfig is FaultStudy under an explicit hierarchy
// configuration. The layout differential suite runs it once per storage
// layout: the fault model is defined over each entry's logical payload
// bits, not its physical words, so identical seeds must corrupt both
// layouts identically and the study's points must match exactly.
func FaultStudyConfig(profile workload.Profile, cfg core.Config, params engine.Params, rates []float64) ([]FaultPoint, error) {
	clean := engine.Run(workload.New(profile), cfg, params, ConfigBTB2)
	cleanCPI := clean.CPI()

	prots := []fault.Protection{fault.Unprotected, fault.Parity}
	out := make([]FaultPoint, len(rates)*len(prots))
	err := parallelFor(len(out), func(i int) {
		rate := rates[i/len(prots)]
		prot := prots[i%len(prots)]
		p := params
		p.Fault = fault.ZEC12Rates(uint64(profile.Seed), rate, prot)
		res := engine.Run(workload.New(profile), cfg, p, ConfigBTB2)
		pt := FaultPoint{
			RatePerM:   rate,
			Protection: prot,
			CPI:        res.CPI(),
			BadRate:    100 * res.Outcomes.BadRate(),
			Stats:      res.Fault,
		}
		if cleanCPI != 0 {
			pt.DeltaCPIPct = 100 * (res.CPI() - cleanCPI) / cleanCPI
		}
		out[i] = pt
	})
	return out, err
}
