package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"

	"bulkpreload/internal/engine"
)

// The storage-layout differential gate. The predictor tables ship a
// structure-of-arrays bit-packed layout (a few uint64 words per row)
// with the original array-of-structs layout retained as a serial
// oracle behind Config.StructLayout. Packing is only allowed to change
// how bits are stored, never which bits exist: this gate runs the same
// units through both layouts — the packed default on the work-stealing
// parallel pipeline, the struct oracle on the single-threaded serial
// path — and demands bit-identical results, then proves the ZBPC
// checkpoint format is layout-independent by round-tripping a mid-run
// checkpoint through its gob encoding and resuming each layout from
// the checkpoint the *other* layout wrote.

// StructLayoutUnits returns a copy of units with every hierarchy forced
// onto the retained array-of-structs oracle layout.
func StructLayoutUnits(units []Unit) []Unit {
	out := make([]Unit, len(units))
	for i, u := range units {
		u.Config.StructLayout = true
		out[i] = u
	}
	return out
}

// VerifyLayoutDifferential runs units through the packed layout on the
// parallel pipeline and the struct-oracle layout on the serial path,
// then runs the checkpoint leg for each unit: capture a ZBPC checkpoint
// mid-run under both layouts, round-trip each through the gob wire
// format, demand the decoded checkpoints identical, and resume each
// layout from the other layout's checkpoint. ckptEvery is the
// checkpoint interval in instructions and must land inside the run.
// Returns one human-readable line per mismatch; an empty slice proves
// the packed layout is observationally identical to the struct layout,
// mid-run state included.
func VerifyLayoutDifferential(ctx context.Context, workers int, units []Unit, ckptEvery int64) ([]string, error) {
	structRes, serr := RunUnitsSerial(StructLayoutUnits(units))
	packedRes, perr := RunUnits(ctx, workers, units)
	var mismatches []string
	for i := range units {
		mismatches = append(mismatches, DiffResults(units[i].Label+"/layout", structRes[i], packedRes[i])...)
	}
	var errs []error
	if serr != nil {
		errs = append(errs, serr)
	}
	if perr != nil {
		errs = append(errs, perr)
	}
	for i := range units {
		ms, err := checkpointLeg(&units[i], ckptEvery)
		mismatches = append(mismatches, ms...)
		if err != nil {
			errs = append(errs, err)
		}
	}
	return mismatches, errors.Join(errs...)
}

// checkpointLeg proves ZBPC layout independence for one unit: both
// layouts run to completion capturing a checkpoint at ckptEvery
// instructions, each checkpoint round-trips through Checkpoint.Write /
// ReadCheckpoint, the decoded checkpoints must be deeply equal, and
// each layout must resume from the opposite layout's checkpoint to a
// result bit-identical with the other resumed run.
func checkpointLeg(u *Unit, ckptEvery int64) (out []string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: layout checkpoint leg (%s) panicked: %v", u.Label, r)
		}
	}()
	run := func(structLayout bool) (engine.Result, *engine.Checkpoint, error) {
		cfg := u.Config
		cfg.StructLayout = structLayout
		params := u.Params
		params.CheckpointInterval = ckptEvery
		var last *engine.Checkpoint
		params.CheckpointSink = func(ck *engine.Checkpoint) { last = ck }
		res := engine.Run(u.NewSource(), cfg, params, u.ConfigName)
		if last == nil {
			return res, nil, fmt.Errorf("sim: layout gate (%s): no checkpoint captured (interval %d, run was %d instructions)",
				u.Label, ckptEvery, res.Instructions)
		}
		// Round-trip through the ZBPC wire format — the gate must hold
		// for checkpoints as persisted, not just as in-memory structs.
		var buf bytes.Buffer
		if werr := last.Write(&buf); werr != nil {
			return res, nil, fmt.Errorf("sim: layout gate (%s): %w", u.Label, werr)
		}
		ck, rerr := engine.ReadCheckpoint(&buf)
		if rerr != nil {
			return res, nil, fmt.Errorf("sim: layout gate (%s): %w", u.Label, rerr)
		}
		return res, ck, nil
	}
	packedFull, packedCk, err := run(false)
	if err != nil {
		return nil, err
	}
	structFull, structCk, err := run(true)
	if err != nil {
		return nil, err
	}
	out = append(out, DiffResults(u.Label+"/ckpt-full", structFull, packedFull)...)
	if !reflect.DeepEqual(packedCk, structCk) {
		out = append(out, fmt.Sprintf("%s: ZBPC checkpoint at instruction %d differs between layouts",
			u.Label, packedCk.Instructions))
	}
	// Cross-layout resume: the packed hierarchy restores the checkpoint
	// the struct layout wrote, and vice versa.
	resume := func(structLayout bool, ck *engine.Checkpoint) (engine.Result, error) {
		cfg := u.Config
		cfg.StructLayout = structLayout
		return engine.New(cfg, u.Params).Resume(u.NewSource(), ck)
	}
	packedRes, err := resume(false, structCk)
	if err != nil {
		return out, fmt.Errorf("sim: layout gate (%s): packed resume from struct checkpoint: %w", u.Label, err)
	}
	structRes, err := resume(true, packedCk)
	if err != nil {
		return out, fmt.Errorf("sim: layout gate (%s): struct resume from packed checkpoint: %w", u.Label, err)
	}
	out = append(out, DiffResults(u.Label+"/ckpt-resume", structRes, packedRes)...)
	return out, nil
}
