package sim

import (
	"strings"
	"testing"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

// quickParams trims warmup for small test traces.
func quickParams() engine.Params {
	p := engine.DefaultParams()
	p.WarmupInstructions = 30_000
	return p
}

// quickProfile is a mid-size capacity-bound workload for fast sim tests.
func quickProfile() workload.Profile {
	return workload.Profile{
		Name: "sim-test", UniqueBranches: 20_000, TakenFraction: 0.65,
		Instructions: 250_000, HotFraction: 0.12, WindowFunctions: 64,
		CallsPerTransaction: 8, Seed: 4242,
	}
}

func TestTable3Configs(t *testing.T) {
	cfgs := Table3()
	if len(cfgs) != 3 {
		t.Fatalf("Table 3 has 3 configurations, got %d", len(cfgs))
	}
	// Configuration 1: no BTB2.
	if cfgs[ConfigNoBTB2].BTB2Enabled {
		t.Error("config 1 has BTB2 enabled")
	}
	if cfgs[ConfigNoBTB2].BTB1.Capacity() != 4096 {
		t.Error("config 1 BTB1 != 4k")
	}
	// Configuration 2: 24k BTB2 enabled.
	if !cfgs[ConfigBTB2].BTB2Enabled || cfgs[ConfigBTB2].BTB2.Capacity() != 24576 {
		t.Error("config 2 BTB2 wrong")
	}
	// Configuration 3: 24k BTB1, no BTB2.
	if cfgs[ConfigLargeL1].BTB2Enabled || cfgs[ConfigLargeL1].BTB1.Capacity() != 24576 {
		t.Error("config 3 wrong")
	}
	// All BTBPs are 768 branches.
	for name, c := range cfgs {
		if c.BTBP.Capacity() != 768 {
			t.Errorf("%s: BTBP capacity %d", name, c.BTBP.Capacity())
		}
	}
}

func TestCompareShape(t *testing.T) {
	c := Compare(workload.New(quickProfile()), quickParams())
	if c.Trace != "sim-test" {
		t.Errorf("trace name = %q", c.Trace)
	}
	// Capacity-bound workload: both enhancements help, and the
	// unrealistically large BTB1 is the ceiling.
	if c.BTB2Improvement() <= 0 {
		t.Errorf("BTB2 improvement = %.2f%%, want positive", c.BTB2Improvement())
	}
	if c.LargeImprovement() <= 0 {
		t.Errorf("large-BTB1 improvement = %.2f%%, want positive", c.LargeImprovement())
	}
	eff := c.Effectiveness()
	if eff <= 0 || eff > 160 {
		t.Errorf("effectiveness = %.1f%%, implausible", eff)
	}
	if !strings.Contains(c.String(), "BTB2") {
		t.Error("String() missing content")
	}
}

func TestAverages(t *testing.T) {
	cs := []Comparison{
		{Base: engine.Result{Instructions: 100, Cycles: 200},
			BTB2:      engine.Result{Instructions: 100, Cycles: 180},
			LargeBTB1: engine.Result{Instructions: 100, Cycles: 160}},
		{Base: engine.Result{Instructions: 100, Cycles: 100},
			BTB2:      engine.Result{Instructions: 100, Cycles: 95},
			LargeBTB1: engine.Result{Instructions: 100, Cycles: 90}},
	}
	if got := AverageBTB2Improvement(cs); got < 7.49 || got > 7.51 {
		t.Errorf("AverageBTB2Improvement = %v, want ~7.5", got)
	}
	if got := AverageEffectiveness(cs); got < 49.99 || got > 50.01 {
		t.Errorf("AverageEffectiveness = %v, want ~50", got)
	}
	if AverageBTB2Improvement(nil) != 0 || AverageEffectiveness(nil) != 0 {
		t.Error("empty averages not zero")
	}
}

func TestEffectivenessZeroGuard(t *testing.T) {
	c := Comparison{
		Base:      engine.Result{Instructions: 100, Cycles: 100},
		BTB2:      engine.Result{Instructions: 100, Cycles: 90},
		LargeBTB1: engine.Result{Instructions: 100, Cycles: 100}, // no gain
	}
	if c.Effectiveness() != 0 {
		t.Error("zero-division not guarded")
	}
}

func TestSweepBTB2Size(t *testing.T) {
	profiles := []workload.Profile{quickProfile()}
	pts, err := SweepBTB2Size(profiles, quickParams(), []int{1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Figure 5's shape: a larger BTB2 helps at least as much (within
	// noise) as a smaller one on a capacity-bound workload.
	if pts[1].Improvement < pts[0].Improvement-0.5 {
		t.Errorf("24k BTB2 (%.2f%%) much worse than 6k (%.2f%%)",
			pts[1].Improvement, pts[0].Improvement)
	}
	if !pts[1].Shipping || pts[0].Shipping {
		t.Error("shipping flag wrong")
	}
	if pts[1].Label != "24k (4096 x 6)" {
		t.Errorf("label = %q", pts[1].Label)
	}
}

func TestSweepMissDefinition(t *testing.T) {
	profiles := []workload.Profile{quickProfile()}
	pts, err := SweepMissDefinition(profiles, quickParams(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Improvement < -2 {
			t.Errorf("%s: improvement %.2f%% wildly negative", pt.Label, pt.Improvement)
		}
	}
	if !pts[1].Shipping {
		t.Error("4-search point not flagged as shipping")
	}
}

func TestSweepTrackers(t *testing.T) {
	profiles := []workload.Profile{quickProfile()}
	pts, err := SweepTrackers(profiles, quickParams(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// More trackers should not hurt much.
	if pts[1].Improvement < pts[0].Improvement-0.5 {
		t.Errorf("3 trackers (%.2f%%) much worse than 1 (%.2f%%)",
			pts[1].Improvement, pts[0].Improvement)
	}
	if !pts[1].Shipping {
		t.Error("3-tracker point not flagged as shipping")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	profiles := []workload.Profile{quickProfile()}
	abs, err := Ablations(profiles, quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) != 8 {
		t.Fatalf("ablations = %d", len(abs))
	}
	names := map[string]bool{}
	for _, a := range abs {
		names[a.Name] = true
	}
	if !names["shipping (semi-exclusive, steered, filtered)"] {
		t.Error("shipping ablation missing")
	}
	// Results are sorted descending.
	for i := 1; i < len(abs); i++ {
		if abs[i].Improvement > abs[i-1].Improvement {
			t.Error("ablations not sorted")
		}
	}
}

func TestFigure2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 2 in -short mode")
	}
	// A miniature Figure 2: just verify all 13 traces run and produce
	// finite numbers.
	cs, err := Figure2(120_000, quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 13 {
		t.Fatalf("traces = %d", len(cs))
	}
	for _, c := range cs {
		if c.Base.CPI() <= 0 || c.BTB2.CPI() <= 0 || c.LargeBTB1.CPI() <= 0 {
			t.Errorf("%s: non-positive CPI", c.Trace)
		}
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 64} {
		hit := make([]int32, n)
		if err := parallelFor(n, func(i int) { hit[i]++ }); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, h)
			}
		}
	}
}
