package sim

import (
	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

// HardwareResult is one row of the Figure 3 study: the BTB2's CPI
// improvement in simulation mode (infinite L2, as the paper's C++ model)
// versus hardware mode (finite L2 and beyond, as the real zEC12). The
// paper measured 8.5% (sim) vs 5.3% (hardware) on single-core
// WASDB+CBW2, and 3.4% on the 4-core Web CICS/DB2 — the gap attributed
// to cache levels the simulation treated as infinite.
type HardwareResult struct {
	Name         string
	Cores        int
	SimGain      float64
	HardwareGain float64
}

// Figure3 reproduces the hardware study: WASDB+CBW2 on one core, and Web
// CICS/DB2 on four cores (four independent per-core instances with
// distinct seeds, aggregated by total cycles — system throughput).
func Figure3(instructions int, params engine.Params) ([]HardwareResult, error) {
	hw := params
	hw.FiniteL2 = true

	var out []HardwareResult

	// Single-core WASDB+CBW2.
	wasdb, err := workload.ByName("zos-lspr-wasdb-cbw2", instructions)
	if err != nil {
		return nil, err
	}
	out = append(out, HardwareResult{
		Name:         "WASDB+CBW2 (1 core)",
		Cores:        1,
		SimGain:      gainOn([]workload.Profile{wasdb}, params),
		HardwareGain: gainOn([]workload.Profile{wasdb}, hw),
	})

	// Four-core Web CICS/DB2: four per-core instances, distinct seeds.
	base, err := workload.ByName("zos-lspr-cicsdb2", instructions)
	if err != nil {
		return out, err
	}
	var cores []workload.Profile
	for i := 0; i < 4; i++ {
		p := base
		p.Name = "web-cicsdb2-core" + string(rune('0'+i))
		p.Seed = base.Seed + int64(100*(i+1))
		cores = append(cores, p)
	}
	out = append(out, HardwareResult{
		Name:         "Web CICS/DB2 (4 cores)",
		Cores:        4,
		SimGain:      gainOn(cores, params),
		HardwareGain: gainOn(cores, hw),
	})
	return out, nil
}

// gainOn runs config 1 and config 2 across all profiles (one engine
// instance per profile = per core) and returns the aggregate-throughput
// improvement: total cycles summed across cores.
func gainOn(profiles []workload.Profile, params engine.Params) float64 {
	var baseCycles, btb2Cycles, baseInsts, btb2Insts float64
	for _, p := range profiles {
		src := workload.New(p)
		b := engine.Run(src, core.OneLevelConfig(), params, ConfigNoBTB2)
		v := engine.Run(src, core.DefaultConfig(), params, ConfigBTB2)
		baseCycles += b.Cycles
		btb2Cycles += v.Cycles
		baseInsts += float64(b.Instructions)
		btb2Insts += float64(v.Instructions)
	}
	if baseCycles == 0 || baseInsts == 0 || btb2Insts == 0 {
		return 0
	}
	baseCPI := baseCycles / baseInsts
	btb2CPI := btb2Cycles / btb2Insts
	return 100 * (baseCPI - btb2CPI) / baseCPI
}
