package sim

import (
	"bulkpreload/internal/engine"
	"bulkpreload/internal/obs"
)

// AggregateMetrics merges the final registry snapshots of many shard
// results into one fleet-wide snapshot: counters and histogram buckets
// add, gauges add (summed occupancy across shards). Each shard's
// registry is goroutine-local while running (see the obs package
// ownership model); the immutable snapshots in engine.Result are what
// crosses the goroutine boundary, so this is safe to call after any
// parallelFor-driven study. Results without metrics are skipped; ok
// reports whether any shard contributed.
func AggregateMetrics(results ...engine.Result) (agg obs.Snapshot, ok bool) {
	for _, r := range results {
		if r.Metrics == nil {
			continue
		}
		if !ok {
			ok = true
			// Deep-copy the first shard (Merge adds into bucket slices in
			// place, which must never mutate a shard's own snapshot).
			agg = obs.Snapshot{Seq: r.Metrics.Seq, Values: append([]obs.Value(nil), r.Metrics.Values...)}
			for i := range agg.Values {
				v := &agg.Values[i]
				v.Bounds = append([]int64(nil), v.Bounds...)
				v.Buckets = append([]int64(nil), v.Buckets...)
			}
			continue
		}
		agg.Merge(*r.Metrics)
	}
	return agg, ok
}

// ComparisonMetrics aggregates one configuration's final snapshots
// across a slice of per-trace comparisons. pick selects the result to
// aggregate from each comparison (e.g. func(c Comparison) engine.Result
// { return c.BTB2 }).
func ComparisonMetrics(cs []Comparison, pick func(Comparison) engine.Result) (obs.Snapshot, bool) {
	results := make([]engine.Result, len(cs))
	for i, c := range cs {
		results[i] = pick(c)
	}
	return AggregateMetrics(results...)
}
