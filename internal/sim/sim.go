// Package sim orchestrates simulation studies: the three Table 3
// configurations, per-trace runs, comparisons between configurations
// (Figure 2's improvement and BTB2-effectiveness metrics), and the
// parameter sweeps of Figures 5-7.
package sim

import (
	"context"
	"fmt"
	"sort"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// Config names from Table 3.
const (
	ConfigNoBTB2  = "no-btb2"    // configuration 1: baseline
	ConfigBTB2    = "btb2"       // configuration 2: two-level bulk preload
	ConfigLargeL1 = "large-btb1" // configuration 3: unrealistically large BTB1
)

// Table3 returns the three simulated configurations of Table 3 keyed by
// name.
func Table3() map[string]core.Config {
	return map[string]core.Config{
		ConfigNoBTB2:  core.OneLevelConfig(),
		ConfigBTB2:    core.DefaultConfig(),
		ConfigLargeL1: core.LargeOneLevelConfig(),
	}
}

// Comparison is the Figure 2 measurement for one trace: CPI improvements
// of configurations 2 and 3 over configuration 1, and the BTB2
// effectiveness ratio.
type Comparison struct {
	Trace     string
	Base      engine.Result // configuration 1
	BTB2      engine.Result // configuration 2
	LargeBTB1 engine.Result // configuration 3
}

// BTB2Improvement returns the percent CPI improvement of the two-level
// design over the baseline.
func (c Comparison) BTB2Improvement() float64 { return c.BTB2.Improvement(c.Base) }

// LargeImprovement returns the percent CPI improvement of the 24k BTB1
// over the baseline.
func (c Comparison) LargeImprovement() float64 { return c.LargeBTB1.Improvement(c.Base) }

// Effectiveness returns the BTB2 effectiveness: "the ratio of the
// improvement from adding the BTB2 compared to the improvement from
// adding the unrealistically large BTB1".
func (c Comparison) Effectiveness() float64 {
	li := c.LargeImprovement()
	if li == 0 {
		return 0
	}
	return 100 * c.BTB2Improvement() / li
}

// String renders the comparison as a Figure 2 row.
func (c Comparison) String() string {
	return fmt.Sprintf("%-26s BTB2 %+6.2f%%  largeBTB1 %+6.2f%%  effectiveness %5.1f%%",
		c.Trace, c.BTB2Improvement(), c.LargeImprovement(), c.Effectiveness())
}

// Compare runs all three Table 3 configurations on one trace source.
func Compare(src trace.Source, params engine.Params) Comparison {
	return Comparison{
		Trace:     src.Name(),
		Base:      engine.Run(src, core.OneLevelConfig(), params, ConfigNoBTB2),
		BTB2:      engine.Run(src, core.DefaultConfig(), params, ConfigBTB2),
		LargeBTB1: engine.Run(src, core.LargeOneLevelConfig(), params, ConfigLargeL1),
	}
}

// Figure2 runs the full Figure 2 study: all 13 Table 4 traces under the
// three configurations, scheduled as 39 independent (config, trace)
// units across the work-stealing pool (each unit uses private engine
// and workload instances, so results are deterministic regardless of
// which worker runs what). instructions <= 0 uses the workload default.
// A unit that fails (panics) leaves its slot of the Comparison
// zero-valued and is reported in the returned error; every other
// result survives.
func Figure2(instructions int, params engine.Params) ([]Comparison, error) {
	profiles := workload.Table4Profiles(instructions)
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{ConfigNoBTB2, core.OneLevelConfig()},
		{ConfigBTB2, core.DefaultConfig()},
		{ConfigLargeL1, core.LargeOneLevelConfig()},
	}
	units := make([]Unit, 0, len(profiles)*len(configs))
	for i := range profiles {
		for _, c := range configs {
			units = append(units, ProfileUnit(profiles[i], c.cfg, params, c.name))
		}
	}
	res, err := RunUnits(context.Background(), 0, units)
	out := make([]Comparison, len(profiles))
	for i := range profiles {
		out[i] = Comparison{
			Trace:     profiles[i].Name,
			Base:      res[3*i],
			BTB2:      res[3*i+1],
			LargeBTB1: res[3*i+2],
		}
	}
	return out, err
}

// AverageBTB2Improvement returns the mean BTB2 improvement across
// comparisons (the quantity Figures 5-7 sweep).
func AverageBTB2Improvement(cs []Comparison) float64 {
	if len(cs) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cs {
		sum += c.BTB2Improvement()
	}
	return sum / float64(len(cs))
}

// AverageEffectiveness returns the mean BTB2 effectiveness.
func AverageEffectiveness(cs []Comparison) float64 {
	if len(cs) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cs {
		sum += c.Effectiveness()
	}
	return sum / float64(len(cs))
}

// SweepPoint is one x/y point of a Figure 5/6/7-style sweep: the average
// BTB2 improvement at one parameter setting.
type SweepPoint struct {
	Label       string  // e.g. "24k (4k x 6)"
	Value       float64 // numeric parameter value (plot x)
	Improvement float64 // average CPI improvement vs configuration 1
	Shipping    bool    // the setting chosen for the hardware
}

// BTB2Geometry builds a BTB2 btb.Config with the given rows (ways fixed
// at 6, 32-byte rows). rows must be a power of two >= 64.
func BTB2Geometry(rows int) btb.Config {
	bits := 0
	for r := rows; r > 1; r >>= 1 {
		bits++
	}
	hi := uint(58 - bits + 1)
	return btb.Config{Name: "BTB2", Rows: rows, Ways: 6, IndexHi: hi, IndexLo: 58}
}

// SweepBTB2Size reproduces Figure 5: the average improvement as the BTB2
// capacity varies. Sizes are total branch capacities (rows x 6). All
// points run as one scheduler invocation with the shared baseline runs
// deduplicated (this is the capacity study the parallel pipeline exists
// for).
func SweepBTB2Size(profiles []workload.Profile, params engine.Params, rowCounts []int) ([]SweepPoint, error) {
	variants := make([]core.Config, len(rowCounts))
	for i, rows := range rowCounts {
		cfg := core.DefaultConfig()
		cfg.BTB2 = BTB2Geometry(rows)
		variants[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, core.OneLevelConfig(), variants)
	out := make([]SweepPoint, 0, len(rowCounts))
	for i, rows := range rowCounts {
		out = append(out, SweepPoint{
			Label:       fmt.Sprintf("%dk (%d x 6)", rows*6/1024, rows),
			Value:       float64(rows * 6),
			Improvement: imps[i],
			Shipping:    rows == 4096,
		})
	}
	return out, err
}

// SweepMissDefinition reproduces Figure 6: the average improvement as the
// BTB1-miss search limit varies (the shipping design uses 4 searches /
// 128 bytes).
func SweepMissDefinition(profiles []workload.Profile, params engine.Params, limits []int) ([]SweepPoint, error) {
	variants := make([]core.Config, len(limits))
	for i, lim := range limits {
		cfg := core.DefaultConfig()
		cfg.Miss.SearchLimit = lim
		variants[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, core.OneLevelConfig(), variants)
	out := make([]SweepPoint, 0, len(limits))
	for i, lim := range limits {
		out = append(out, SweepPoint{
			Label:       fmt.Sprintf("%d searches (%dB)", lim, lim*32),
			Value:       float64(lim),
			Improvement: imps[i],
			Shipping:    lim == 4,
		})
	}
	return out, err
}

// SweepTrackers reproduces Figure 7: the average improvement as the
// number of BTB2 search trackers varies (the shipping design uses 3).
func SweepTrackers(profiles []workload.Profile, params engine.Params, counts []int) ([]SweepPoint, error) {
	variants := make([]core.Config, len(counts))
	for i, n := range counts {
		cfg := core.DefaultConfig()
		cfg.Tracker.Count = n
		variants[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, core.OneLevelConfig(), variants)
	out := make([]SweepPoint, 0, len(counts))
	for i, n := range counts {
		out = append(out, SweepPoint{
			Label:       fmt.Sprintf("%d trackers", n),
			Value:       float64(n),
			Improvement: imps[i],
			Shipping:    n == 3,
		})
	}
	return out, err
}

// averageImprovement runs base and variant configs over all profiles
// through the shard scheduler and averages the CPI improvement. A
// failed unit contributes zero to the average and surfaces in the
// returned error.
func averageImprovement(profiles []workload.Profile, params engine.Params, base, variant core.Config) (float64, error) {
	imps, err := averageImprovements(profiles, params, base, []core.Config{variant})
	return imps[0], err
}

// averageImprovements is the batched sweep core: one scheduler
// invocation covering the shared base configuration once per profile
// plus every variant per profile, returning each variant's average CPI
// improvement over the base. Deduplicating the base runs is what makes
// multi-point sweeps core-bound instead of wall-clock-bound — a
// k-point sweep costs (k+1) x len(profiles) runs instead of 2k x
// len(profiles), all fanned across the work-stealing pool.
func averageImprovements(profiles []workload.Profile, params engine.Params, base core.Config, variants []core.Config) ([]float64, error) {
	np := len(profiles)
	units := make([]Unit, 0, np*(1+len(variants)))
	for i := range profiles {
		units = append(units, ProfileUnit(profiles[i], base, params, "base"))
	}
	for _, v := range variants {
		for i := range profiles {
			units = append(units, ProfileUnit(profiles[i], v, params, "variant"))
		}
	}
	res, err := RunUnits(context.Background(), 0, units)
	out := make([]float64, len(variants))
	if np == 0 {
		return out, err
	}
	for vi := range variants {
		sum := 0.0
		for pi := 0; pi < np; pi++ {
			sum += res[np*(1+vi)+pi].Improvement(res[pi])
		}
		out[vi] = sum / float64(np)
	}
	return out, err
}

// Ablation is one named design-choice variation and its average
// improvement (relative to configuration 1, like the figures).
type Ablation struct {
	Name        string
	Improvement float64
}

// Ablations runs the design-choice studies DESIGN.md calls out: steering
// off, I-cache filter off, exclusivity policies, and the not-taken
// install knob.
func Ablations(profiles []workload.Profile, params engine.Params) ([]Ablation, error) {
	base := core.OneLevelConfig()
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"shipping (semi-exclusive, steered, filtered)", func(*core.Config) {}},
		{"steering disabled (sequential transfers)", func(c *core.Config) { c.UseSteering = false }},
		{"i-cache filter disabled (all misses full search)", func(c *core.Config) { c.Tracker.FilterByICache = false }},
		{"true-exclusive policy", func(c *core.Config) { c.Policy = core.TrueExclusive }},
		{"inclusive policy", func(c *core.Config) { c.Policy = core.Inclusive }},
		{"install not-taken surprises", func(c *core.Config) { c.InstallNotTaken = true }},
		{"BTBP bypassed (installs pollute BTB1)", func(c *core.Config) { c.BypassBTBP = true }},
		{"multi-block transfer chase", func(c *core.Config) { c.MultiBlockTransfer = true }},
	}
	cfgs := make([]core.Config, len(variants))
	for i, v := range variants {
		cfg := core.DefaultConfig()
		v.mutate(&cfg)
		cfgs[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, base, cfgs)
	out := make([]Ablation, 0, len(variants))
	for i, v := range variants {
		out = append(out, Ablation{
			Name:        v.name,
			Improvement: imps[i],
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Improvement > out[j].Improvement })
	return out, err
}
