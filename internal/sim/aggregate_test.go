package sim

import (
	"testing"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

// shardProfiles returns n small, distinct capacity-bound workloads so
// each shard produces different (non-zero) counter values.
func shardProfiles(n int) []workload.Profile {
	ps := make([]workload.Profile, n)
	for i := range ps {
		ps[i] = workload.Profile{
			Name: "agg-shard", UniqueBranches: 12_000, TakenFraction: 0.6,
			Instructions: 120_000, HotFraction: 0.15, WindowFunctions: 48,
			CallsPerTransaction: 6, Seed: int64(100 + i),
		}
	}
	return ps
}

func TestAggregateMetrics(t *testing.T) {
	cfgs := Table3()
	profiles := shardProfiles(3)
	results := make([]engine.Result, len(profiles))
	params := quickParams()
	if err := parallelFor(len(profiles), func(i int) {
		results[i] = engine.Run(workload.New(profiles[i]), cfgs[ConfigBTB2], params, ConfigBTB2)
	}); err != nil {
		t.Fatal(err)
	}

	var wantPred, wantBurstCount int64
	wantBuckets := []int64{}
	for i, r := range results {
		if r.Metrics == nil {
			t.Fatalf("shard %d has no final metrics snapshot", i)
		}
		wantPred += r.Metrics.Counter("hier_predictions_total")
		v, ok := r.Metrics.Get("hier_transfer_burst_entries")
		if !ok {
			t.Fatalf("shard %d missing transfer-burst histogram", i)
		}
		wantBurstCount += v.Count
		if len(wantBuckets) == 0 {
			wantBuckets = make([]int64, len(v.Buckets))
		}
		for k := range v.Buckets {
			wantBuckets[k] += v.Buckets[k]
		}
	}
	if wantPred == 0 {
		t.Fatal("shards made no predictions; workload too small")
	}

	// Record shard 0's state so we can prove aggregation never mutates
	// the inputs (Merge adds into the aggregate's own deep copies).
	before, _ := results[0].Metrics.Get("hier_transfer_burst_entries")
	beforeBuckets := append([]int64(nil), before.Buckets...)
	beforePred := results[0].Metrics.Counter("hier_predictions_total")

	agg, ok := AggregateMetrics(results...)
	if !ok {
		t.Fatal("AggregateMetrics found no snapshots")
	}
	if got := agg.Counter("hier_predictions_total"); got != wantPred {
		t.Errorf("merged predictions = %d, want sum of shards %d", got, wantPred)
	}
	av, _ := agg.Get("hier_transfer_burst_entries")
	if av.Count != wantBurstCount {
		t.Errorf("merged burst histogram count = %d, want %d", av.Count, wantBurstCount)
	}
	for k := range wantBuckets {
		if av.Buckets[k] != wantBuckets[k] {
			t.Errorf("merged burst bucket %d = %d, want %d", k, av.Buckets[k], wantBuckets[k])
		}
	}

	if got := results[0].Metrics.Counter("hier_predictions_total"); got != beforePred {
		t.Errorf("aggregation mutated shard 0 predictions: %d -> %d", beforePred, got)
	}
	after, _ := results[0].Metrics.Get("hier_transfer_burst_entries")
	for k := range beforeBuckets {
		if after.Buckets[k] != beforeBuckets[k] {
			t.Errorf("aggregation mutated shard 0 bucket %d: %d -> %d",
				k, beforeBuckets[k], after.Buckets[k])
		}
	}

	// No shards with metrics -> not ok.
	if _, ok := AggregateMetrics(engine.Result{}); ok {
		t.Error("AggregateMetrics reported ok with no snapshots")
	}
}

func TestComparisonMetrics(t *testing.T) {
	cfgs := Table3()
	profiles := shardProfiles(2)
	params := quickParams()
	cs := make([]Comparison, len(profiles))
	if err := parallelFor(len(profiles), func(i int) {
		cs[i] = Comparison{
			Trace: profiles[i].Name,
			BTB2:  engine.Run(workload.New(profiles[i]), cfgs[ConfigBTB2], params, ConfigBTB2),
		}
	}); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, c := range cs {
		want += c.BTB2.Metrics.Counter("hier_predictions_total")
	}
	agg, ok := ComparisonMetrics(cs, func(c Comparison) engine.Result { return c.BTB2 })
	if !ok {
		t.Fatal("ComparisonMetrics found no snapshots")
	}
	if got := agg.Counter("hier_predictions_total"); got != want {
		t.Errorf("merged predictions = %d, want %d", got, want)
	}
	// The Base results carry no metrics; picking them reports not ok.
	if _, ok := ComparisonMetrics(cs, func(c Comparison) engine.Result { return c.Base }); ok {
		t.Error("ComparisonMetrics reported ok for empty results")
	}
}
