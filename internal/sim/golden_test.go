package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from current behaviour")

// goldenRecord pins the externally-visible numbers of one deterministic
// run. Any unintentional behaviour change in the predictor, workload
// generator or timing model shows up as a golden diff.
type goldenRecord struct {
	Config       string       `json:"config"`
	Instructions int64        `json:"instructions"`
	Cycles       float64      `json:"cycles"`
	Outcomes     stats.Counts `json:"outcomes"`
	Transfers    int64        `json:"transfers"`
}

func goldenRuns() []engine.Result {
	prof := workload.Profile{
		Name: "golden", UniqueBranches: 12_000, TakenFraction: 0.66,
		Instructions: 200_000, HotFraction: 0.12, WindowFunctions: 48,
		CallsPerTransaction: 8, Seed: 20130223, // the paper's HPCA dates
	}
	params := engine.DefaultParams()
	params.WarmupInstructions = 40_000
	var out []engine.Result
	for _, name := range []string{ConfigNoBTB2, ConfigBTB2, ConfigLargeL1} {
		out = append(out, engine.Run(workload.New(prof), Table3()[name], params, name))
	}
	return out
}

func toRecords(rs []engine.Result) []goldenRecord {
	var recs []goldenRecord
	for _, r := range rs {
		recs = append(recs, goldenRecord{
			Config:       r.Config,
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			Outcomes:     r.Outcomes,
			Transfers:    r.Hier.TransferredHits,
		})
	}
	return recs
}

func TestGoldenRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run in -short mode")
	}
	path := filepath.Join("testdata", "golden.json")
	got := toRecords(goldenRuns())

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/sim -run TestGolden -update-golden`): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d records, run produced %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("golden mismatch for %s:\n  got  %+v\n  want %+v\n"+
				"If this change is intentional, refresh with -update-golden.",
				got[i].Config, got[i], want[i])
		}
	}
}
