package sim

import (
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/workload"
)

func TestBTB2RowGeometry(t *testing.T) {
	for _, w := range []int{32, 64, 128} {
		cfg := BTB2RowGeometry(w)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%dB: %v", w, err)
		}
		if cfg.Capacity() != 24576 {
			t.Errorf("%dB: capacity %d, want constant 24k", w, cfg.Capacity())
		}
		if cfg.LineBytes() != w {
			t.Errorf("%dB: line bytes %d", w, cfg.LineBytes())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("accepted unsupported width")
		}
	}()
	BTB2RowGeometry(256)
}

func TestSweepRowCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	pts, err := SweepRowCoverage([]workload.Profile{quickProfile()}, quickParams(), []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if !pts[0].Shipping || pts[1].Shipping {
		t.Error("shipping flag wrong")
	}
	for _, p := range pts {
		if p.Improvement < -2 {
			t.Errorf("%s: improvement %.2f%% wildly negative", p.Label, p.Improvement)
		}
	}
}

func TestSweepMissMode(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	pts, err := SweepMissMode([]workload.Profile{quickProfile()}, quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Label != "speculative" || !pts[0].Shipping {
		t.Error("first point must be the shipping speculative mode")
	}
	// Every mode must deliver some BTB2 benefit on a capacity-bound
	// workload (each reports real misses eventually).
	for _, p := range pts {
		if p.Improvement <= 0 {
			t.Errorf("%s: improvement %.2f%% not positive", p.Label, p.Improvement)
		}
	}
}

func TestMultiBlockStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study in -short mode")
	}
	pts, err := MultiBlockStudy([]workload.Profile{quickProfile()}, quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// The chase must not be a regression beyond noise: it only spends
	// spare tracker slots on evidence-backed blocks.
	if pts[1].Improvement < pts[0].Improvement-0.5 {
		t.Errorf("multi-block chase regressed: %.2f%% vs %.2f%%",
			pts[1].Improvement, pts[0].Improvement)
	}
}

func TestPreloadStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study in -short mode")
	}
	pts := PreloadStudy(quickProfile(), quickParams())
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Software preload must help a capacity-bound workload (hints name
	// exactly the branches about to execute), and combining it with the
	// hardware BTB2 must not be worse than software alone by more than
	// noise.
	if pts[0].Improvement <= 0 {
		t.Errorf("software preload gained %.2f%%, want positive", pts[0].Improvement)
	}
	if pts[2].Improvement < pts[0].Improvement-1.0 {
		t.Errorf("combined (%.2f%%) much worse than software alone (%.2f%%)",
			pts[2].Improvement, pts[0].Improvement)
	}
	if !pts[1].Shipping {
		t.Error("hardware point not flagged shipping")
	}
}

func TestPreloadHintsImproveWorkload(t *testing.T) {
	// The hinted program shares topology with the unhinted one: same
	// function count, strictly more instructions per invocation.
	plain := quickProfile()
	hinted := quickProfile()
	hinted.PreloadHints = true
	ps, hs := workload.New(plain), workload.New(hinted)
	if ps.Functions() != hs.Functions() {
		t.Errorf("topology diverged: %d vs %d functions", ps.Functions(), hs.Functions())
	}
}

func TestSharingStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study in -short mode")
	}
	a := quickProfile()
	b := quickProfile()
	b.Name = "sim-test-b"
	b.Seed = 777
	r := SharingStudy(a, b, 10_000, core.OneLevelConfig(), quickParams(), "share")
	if r.SoloCPI <= 0 || r.MixedCPI <= 0 {
		t.Fatalf("CPIs not positive: %+v", r)
	}
	// Sharing one predictor between two working sets must not speed
	// things up: interference is non-negative (within noise).
	if r.InterferencePct < -0.5 {
		t.Errorf("negative interference %.2f%%", r.InterferencePct)
	}
}

func TestSweepBTBPSize(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	pts, err := SweepBTBPSize([]workload.Profile{quickProfile()}, quickParams(), []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || !pts[1].Shipping {
		t.Fatalf("points wrong: %+v", pts)
	}
}

func TestSweepInstallDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	pts, err := SweepInstallDelay([]workload.Profile{quickProfile()}, quickParams(), []uint64{8, 24, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || !pts[1].Shipping {
		t.Fatalf("points wrong: %+v", pts)
	}
}
