package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/obs"
)

// The serial-oracle differential gate. Speed is worthless if it changes
// results: every batching and scheduling optimization in this package
// must be invisible in the output. VerifyDifferential runs the same
// units through the single-threaded record-at-a-time oracle
// (RunUnitsSerial) and the work-stealing batched pipeline (RunUnits)
// and demands bit-identical results — every Result field, every metric
// in the final registry snapshot, every interval snapshot. The
// differential test suite and the `diffgate` experiment both sit on
// this entry point.

// VerifyDifferential runs units through both paths and returns one
// human-readable line per mismatch; an empty slice proves the parallel
// pipeline reproduced the oracle bit for bit. The returned error joins
// shard failures from either path (a failed shard is also reported as a
// mismatch only when the two paths disagree about it).
func VerifyDifferential(ctx context.Context, workers int, units []Unit) ([]string, error) {
	serial, serr := RunUnitsSerial(units)
	parallel, perr := RunUnits(ctx, workers, units)
	var mismatches []string
	for i := range units {
		mismatches = append(mismatches, DiffResults(units[i].Label, serial[i], parallel[i])...)
	}
	return mismatches, errors.Join(serr, perr)
}

// DiffResults compares two engine results field by field — the scalar
// fields through their canonical JSON encoding, then the final metric
// snapshot and every interval snapshot through obs.Diff — and returns
// one line per difference, each prefixed with label.
func DiffResults(label string, serial, parallel engine.Result) []string {
	var out []string
	sj, serr := json.Marshal(serial)
	pj, perr := json.Marshal(parallel)
	if serr != nil || perr != nil {
		out = append(out, fmt.Sprintf("%s: marshal failed: serial=%v parallel=%v", label, serr, perr))
	} else if !bytes.Equal(sj, pj) {
		out = append(out, fmt.Sprintf("%s: result fields differ:\n  serial:   %s\n  parallel: %s", label, sj, pj))
	}
	out = append(out, diffSnapshotPtr(label, "metrics", serial.Metrics, parallel.Metrics)...)
	if len(serial.Snapshots) != len(parallel.Snapshots) {
		out = append(out, fmt.Sprintf("%s: interval snapshot count: %d != %d",
			label, len(serial.Snapshots), len(parallel.Snapshots)))
		return out
	}
	for k := range serial.Snapshots {
		for _, d := range obs.Diff(serial.Snapshots[k], parallel.Snapshots[k]) {
			out = append(out, fmt.Sprintf("%s: interval snapshot %d: %s", label, k, d))
		}
	}
	return out
}

func diffSnapshotPtr(label, what string, a, b *obs.Snapshot) []string {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil || b == nil:
		return []string{fmt.Sprintf("%s: %s: present in one path only (serial=%v parallel=%v)",
			label, what, a != nil, b != nil)}
	}
	var out []string
	for _, d := range obs.Diff(*a, *b) {
		out = append(out, fmt.Sprintf("%s: %s: %s", label, what, d))
	}
	return out
}
