package sim

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestParallelForRecoversPanics: a panicking shard must surface in the
// returned error (with its index) while every other shard still runs.
func TestParallelForRecoversPanics(t *testing.T) {
	const n = 32
	hit := make([]int32, n)
	err := parallelFor(n, func(i int) {
		if i == 7 || i == 20 {
			panic("shard blew up")
		}
		hit[i]++
	})
	if err == nil {
		t.Fatal("panicking shards reported no error")
	}
	for _, want := range []string{"shard 7", "shard 20", "shard blew up"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %q:\n%v", want, err)
		}
	}
	for i, h := range hit {
		if i == 7 || i == 20 {
			continue
		}
		if h != 1 {
			t.Errorf("healthy shard %d visited %d times, want 1", i, h)
		}
	}
}

// TestParallelForCtxCancellation: once the context dies, undispatched
// shards are skipped and the cancellation shows up in the joined error.
func TestParallelForCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	release := make(chan struct{})
	err := parallelForCtx(ctx, 1000, func(i int) {
		if ran.Add(1) == 1 {
			cancel() // kill the feed from inside the first shard
			close(release)
		}
		<-release
	})
	if err == nil {
		t.Fatal("canceled run reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("all %d shards ran despite cancellation", got)
	}
}

func TestParallelForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := parallelForCtx(ctx, 8, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled context not reported: %v", err)
	}
	// Workers may drain a few already-queued indices, but a dead context
	// must not let the whole range through unnoticed alongside no error.
	if ran.Load() == 8 && err == nil {
		t.Error("every shard ran under a dead context with no error")
	}
}
