package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// parallelFor runs fn(0..n-1) across min(n, GOMAXPROCS) goroutines.
// Each index's work must be independent (every study builds its own
// engine and workload instances), so results are deterministic
// regardless of scheduling.
//
// A panicking index is isolated: its goroutine recovers, the panic is
// reported in the returned error (joined across all failed indices),
// and every other index still runs to completion — a single corrupt
// shard costs its own result, not the whole study.
func parallelFor(n int, fn func(i int)) error {
	return parallelForCtx(context.Background(), n, fn)
}

// parallelForCtx is parallelFor with cancellation: once ctx is done, no
// new index is dispatched (indices already running finish normally) and
// ctx.Err() is included in the returned error.
func parallelForCtx(ctx context.Context, n int, fn func(i int)) error {
	var (
		mu   sync.Mutex
		errs []error
	)
	report := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	// run executes one index, converting a panic into an error carrying
	// the shard index and its stack.
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				report(fmt.Errorf("sim: shard %d panicked: %v\n%s", i, r, debug.Stack()))
			}
		}()
		fn(i)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				report(fmt.Errorf("sim: canceled before shard %d: %w", i, err))
				break
			}
			run(i)
		}
		return errors.Join(errs...)
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//zbp:bounded next is closed by the feed loop below, which itself selects on ctx.Done
			for i := range next {
				run(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			report(fmt.Errorf("sim: canceled before shard %d: %w", i, ctx.Err()))
			break feed
		}
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}
