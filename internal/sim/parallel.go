package sim

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(0..n-1) across min(n, GOMAXPROCS) goroutines.
// Each index's work must be independent (every study builds its own
// engine and workload instances), so results are deterministic
// regardless of scheduling.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
