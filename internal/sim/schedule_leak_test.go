package sim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"bulkpreload/internal/trace"
)

// waitForGoroutines polls until the process goroutine count is back at
// or below the pre-test baseline, failing with a full stack dump if the
// scheduler leaked workers. Polling (rather than an exact delta) absorbs
// runtime-internal goroutines that retire asynchronously.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d at baseline, %d after run\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}

// blockingSource is a trace source whose first Next parks until the
// test releases it, signalling started so the test can cancel the run
// while the unit is provably in flight. After release it reports EOF.
type blockingSource struct {
	started chan<- struct{}
	release <-chan struct{}
	parked  bool
}

func (s *blockingSource) Name() string { return "blocking" }
func (s *blockingSource) Reset()       { s.parked = false }

func (s *blockingSource) Next() (trace.Inst, bool) {
	if !s.parked {
		s.parked = true
		s.started <- struct{}{}
		<-s.release
	}
	return trace.Inst{}, false
}

// TestRunUnitsCancelWhileUnitBlocked cancels the context while a unit
// is parked inside its source: the in-flight unit is allowed to finish
// (the scheduler never kills a worker mid-unit), every not-yet-started
// unit is reported as abandoned, RunUnits returns cleanly, and no
// worker goroutine outlives the call.
func TestRunUnitsCancelWhileUnitBlocked(t *testing.T) {
	baseline := runtime.NumGoroutine()
	started := make(chan struct{})
	release := make(chan struct{})
	units := schedTestUnits(4)
	// A single worker serves its block in ascending index order: park
	// unit 0 and every other unit is still pending when the context is
	// canceled.
	const blocked = 0
	units[blocked].Label = "parked"
	units[blocked].NewSource = func() trace.Source {
		return &blockingSource{started: started, release: release}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := RunUnits(ctx, 1, units)
		done <- err
	}()

	<-started // the parked unit is running
	cancel()
	close(release) // let the in-flight unit finish

	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunUnits did not return after cancellation and release")
	}
	if err == nil {
		t.Fatal("canceled run reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	for i := blocked + 1; i < len(units); i++ {
		if !strings.Contains(err.Error(), units[i].Label) {
			t.Errorf("abandoned unit %d (%s) not reported in: %v", i, units[i].Label, err)
		}
	}
	if strings.Contains(err.Error(), "parked") {
		t.Errorf("in-flight unit was reported abandoned: %v", err)
	}
	waitForGoroutines(t, baseline)
}

// TestRunUnitsPanicLeavesNoGoroutines re-runs the panic-isolation
// scenario under a goroutine-leak check: a poisoned unit must not
// strand its worker or wedge the pool's shutdown.
func TestRunUnitsPanicLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	units := schedTestUnits(6)
	units[2].Label = "poison"
	units[2].NewSource = func() trace.Source { panic("synthetic shard failure") }
	res, err := RunUnits(context.Background(), 3, units)
	if err == nil || !strings.Contains(err.Error(), "unit 2 (poison) panicked") {
		t.Fatalf("poisoned unit not surfaced: %v", err)
	}
	for i := range units {
		if i != 2 && res[i].Instructions == 0 {
			t.Fatalf("healthy unit %d lost its result", i)
		}
	}
	waitForGoroutines(t, baseline)
}
