package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

// goldenUnits rebuilds the exact runs of golden_test.go as scheduler
// units — same profile, same params, same three configurations.
func goldenUnits() []Unit {
	prof := workload.Profile{
		Name: "golden", UniqueBranches: 12_000, TakenFraction: 0.66,
		Instructions: 200_000, HotFraction: 0.12, WindowFunctions: 48,
		CallsPerTransaction: 8, Seed: 20130223,
	}
	params := engine.DefaultParams()
	params.WarmupInstructions = 40_000
	var units []Unit
	for _, name := range []string{ConfigNoBTB2, ConfigBTB2, ConfigLargeL1} {
		units = append(units, ProfileUnit(prof, Table3()[name], params, name))
	}
	return units
}

// TestGoldenParallelPath regenerates the golden records through the
// work-stealing batched pipeline and demands the serialized output be
// byte-identical to the serial-path golden file on disk. The golden
// file is only ever written by the serial path (golden_test.go's
// -update-golden), so this pins the parallel pipeline to the serial
// oracle at the full golden instruction count — a second, independent
// leg of the differential gate.
func TestGoldenParallelPath(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run in -short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/sim -run TestGolden -update-golden`): %v", err)
	}

	res, rerr := RunUnits(context.Background(), 0, goldenUnits())
	if rerr != nil {
		t.Fatal(rerr)
	}
	got, err := json.MarshalIndent(toRecords(res), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("parallel-path golden output is not byte-identical to the serial golden file:\n--- parallel\n%s\n--- golden\n%s", got, want)
	}
}
