package sim

import (
	"context"
	"testing"

	"bulkpreload/internal/obs/span"
)

// TestRunUnitsTracedHierarchy runs a traced study and checks the span
// tree has the documented shape: one study span rooting one worker span
// per pool worker, one unit span per unit parented to some worker, and
// engine phase + batch spans nested beneath the units.
func TestRunUnitsTracedHierarchy(t *testing.T) {
	units := schedTestUnits(6)
	const workers = 3
	tr := span.NewTrace()
	res, stats, err := RunUnitsTraced(context.Background(), workers, units, tr)
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	byID := make(map[span.ID]span.Event, len(evs))
	kinds := map[span.Kind][]span.Event{}
	for _, e := range evs {
		byID[e.ID] = e
		kinds[e.Kind] = append(kinds[e.Kind], e)
	}
	if len(kinds[span.KindStudy]) != 1 {
		t.Fatalf("got %d study spans, want 1", len(kinds[span.KindStudy]))
	}
	study := kinds[span.KindStudy][0]
	if study.Arg1 != int64(len(units)) || study.Arg2 != int64(workers) {
		t.Errorf("study args = (%d,%d), want (%d,%d)", study.Arg1, study.Arg2, len(units), workers)
	}
	if len(kinds[span.KindWorker]) != workers {
		t.Fatalf("got %d worker spans, want %d", len(kinds[span.KindWorker]), workers)
	}
	for _, w := range kinds[span.KindWorker] {
		if w.Parent != study.ID {
			t.Errorf("worker span %d not parented to study", w.Worker)
		}
	}
	if len(kinds[span.KindUnit]) != len(units) {
		t.Fatalf("got %d unit spans, want %d", len(kinds[span.KindUnit]), len(units))
	}
	var unitInsts int64
	for _, u := range kinds[span.KindUnit] {
		p, ok := byID[u.Parent]
		if !ok || p.Kind != span.KindWorker {
			t.Errorf("unit span %q not parented to a worker span", u.Name)
		}
		unitInsts += u.Arg1
	}
	var resInsts int64
	for i := range res {
		resInsts += res[i].Instructions
	}
	if unitInsts != resInsts {
		t.Errorf("unit span instructions %d != result instructions %d", unitInsts, resInsts)
	}
	if len(kinds[span.KindPhase]) == 0 || len(kinds[span.KindBatch]) == 0 {
		t.Fatalf("missing engine spans: %d phase, %d batch", len(kinds[span.KindPhase]), len(kinds[span.KindBatch]))
	}
	for _, ph := range kinds[span.KindPhase] {
		if p, ok := byID[ph.Parent]; !ok || p.Kind != span.KindUnit {
			t.Errorf("phase span %q not parented to a unit span", ph.Name)
		}
	}
	var bulk, slow int64
	for _, b := range kinds[span.KindBatch] {
		if p, ok := byID[b.Parent]; !ok || p.Kind != span.KindPhase {
			t.Errorf("batch span not parented to a phase span")
		}
		bulk += b.Arg1
		slow += b.Arg2
	}
	// Batch attribution must cover every simulated record and agree with
	// the scheduler's merged fast-path counters.
	if bulk+slow != resInsts {
		t.Errorf("batch attribution %d bulk + %d slow != %d instructions", bulk, slow, resInsts)
	}
	if got := stats.Metrics.Counter("sched_bulk_records_total"); got != bulk {
		t.Errorf("sched_bulk_records_total = %d, span sum = %d", got, bulk)
	}
	if got := stats.Metrics.Counter("sched_slow_records_total"); got != slow {
		t.Errorf("sched_slow_records_total = %d, span sum = %d", got, slow)
	}
	// Steal instants, if any occurred, must agree with the steal counter
	// (each instant records one steal of Arg1 units).
	var stolen int64
	for _, s := range kinds[span.KindSteal] {
		stolen += s.Arg1
	}
	if stolen != stats.Steals {
		t.Errorf("steal instants account for %d units, stats say %d", stolen, stats.Steals)
	}
}

// TestRunUnitsTracedTelemetry checks the new scheduler telemetry:
// busy-time feeding utilization, and queue-depth observations.
func TestRunUnitsTracedTelemetry(t *testing.T) {
	units := schedTestUnits(8)
	for _, workers := range []int{1, 2} {
		_, stats, err := RunUnitsStats(context.Background(), workers, units)
		if err != nil {
			t.Fatal(err)
		}
		if stats.WallNanos <= 0 {
			t.Errorf("workers=%d: WallNanos = %d, want > 0", workers, stats.WallNanos)
		}
		if busy := stats.Metrics.Counter("sched_busy_nanos_total"); busy <= 0 {
			t.Errorf("workers=%d: sched_busy_nanos_total = %d, want > 0", workers, busy)
		}
		u := stats.Utilization()
		if u <= 0 || u > 1.5 { // small slack for clock granularity
			t.Errorf("workers=%d: utilization = %v, want in (0, 1]", workers, u)
		}
		qd, ok := stats.Metrics.Get("sched_queue_depth")
		if !ok {
			t.Fatalf("workers=%d: sched_queue_depth not registered", workers)
		}
		if qd.Count != int64(len(units)) {
			t.Errorf("workers=%d: queue depth observed %d times, want %d (one per pop)",
				workers, qd.Count, len(units))
		}
	}
}

// TestTracedMatchesUntraced proves tracing is observation only: traced
// and untraced runs of the same units produce identical results.
func TestTracedMatchesUntraced(t *testing.T) {
	units := schedTestUnits(5)
	plain, err := RunUnits(context.Background(), 2, units)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := RunUnitsTraced(context.Background(), 2, units, span.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if diffs := DiffResults(units[i].Label, plain[i], traced[i]); len(diffs) != 0 {
			t.Errorf("unit %d: traced run diverged: %v", i, diffs)
		}
	}
}
