package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// The sharded batch pipeline: every study decomposes into independent
// (config, trace) simulation units; RunUnits fans them across a
// work-stealing worker pool where each worker drives the engine's
// batched stepping path, and RunUnitsSerial keeps the single-threaded
// record-at-a-time reference path alive as the differential oracle
// (see diffgate.go). Unit i's result lands in slot i of the returned
// slice regardless of which worker ran it or in what order, so both
// paths produce identical output layouts.

// Unit is one independent simulation: a configuration applied to a
// freshly built trace source. NewSource is called once per run on the
// executing worker, so units never share mutable source state.
type Unit struct {
	Label      string // diagnostic name, e.g. "oltp-1/btb2"
	NewSource  func() trace.Source
	Config     core.Config
	Params     engine.Params
	ConfigName string
}

// ProfileUnit builds the Unit for one workload profile under one
// configuration — the shape every sweep in this package schedules.
func ProfileUnit(p workload.Profile, cfg core.Config, params engine.Params, configName string) Unit {
	return Unit{
		Label:      p.Name + "/" + configName,
		NewSource:  func() trace.Source { return workload.New(p) },
		Config:     cfg,
		Params:     params,
		ConfigName: configName,
	}
}

// RunUnitsSerial is the serial oracle: every unit runs in index order,
// on the calling goroutine, through the engine's record-at-a-time Run
// loop. It is deliberately boring — the differential gate trusts it.
// A panicking unit leaves its Result zero-valued and is reported in the
// returned error; later units still run.
func RunUnitsSerial(units []Unit) ([]engine.Result, error) {
	out := make([]engine.Result, len(units))
	var errs []error
	for i := range units {
		if err := runOneUnit(&units[i], &out[i], i, false); err != nil {
			errs = append(errs, err)
		}
	}
	return out, errors.Join(errs...)
}

// runOneUnit executes one unit into *res, converting a panic into an
// error carrying the unit index, label, and stack. batched selects the
// engine entry point: RunBatched (parallel pipeline) or Run (oracle).
func runOneUnit(u *Unit, res *engine.Result, i int, batched bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: unit %d (%s) panicked: %v\n%s", i, u.Label, r, debug.Stack())
		}
	}()
	eng := engine.New(u.Config, u.Params)
	if batched {
		*res = eng.RunBatched(u.NewSource(), u.ConfigName)
	} else {
		*res = eng.Run(u.NewSource(), u.ConfigName)
	}
	return nil
}

// ShardStats describes one RunUnits invocation: how the units spread
// across workers. Metrics is the merged per-worker scheduler registry
// (units run, steal traffic, instructions simulated) — per-worker
// registries are goroutine-local while running and cross the boundary
// as immutable snapshots merged through AggregateMetrics.
type ShardStats struct {
	Workers int
	Units   int
	Steals  int64 // units that changed workers after initial distribution
	Metrics obs.Snapshot
}

// schedWorker is one worker's goroutine-local scheduler instrumentation.
type schedWorker struct {
	unitsRun      obs.Counter // units this worker executed
	unitsStolen   obs.Counter // units this worker took from victims
	stealAttempts obs.Counter // victim scans, successful or not
	instructions  obs.Counter // instructions simulated by this worker
}

// registry enumerates the worker's counters in a fresh obs registry.
func (w *schedWorker) registry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("sched_units_run_total", "units", "simulation units executed by this worker", &w.unitsRun)
	reg.Counter("sched_units_stolen_total", "units", "units stolen from other workers' queues", &w.unitsStolen)
	reg.Counter("sched_steal_attempts_total", "scans", "victim-queue scans when the local queue drained", &w.stealAttempts)
	reg.Counter("sched_instructions_total", "instructions", "instructions simulated by this worker", &w.instructions)
	return reg
}

// unitQueue is one worker's deque of pending unit indices. The owner
// pops from the tail; thieves take half from the head, preserving the
// owner's locality on recently assigned work.
type unitQueue struct {
	mu sync.Mutex
	q  []int
}

func (w *unitQueue) popTail() (int, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.q)
	if n == 0 {
		return 0, false
	}
	i := w.q[n-1]
	w.q = w.q[:n-1]
	return i, true
}

// stealHalf appends the front half (rounded up) of the queue to into.
func (w *unitQueue) stealHalf(into []int) []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.q)
	if n == 0 {
		return into
	}
	k := (n + 1) / 2
	into = append(into, w.q[:k]...)
	w.q = w.q[:copy(w.q, w.q[k:])]
	return into
}

func (w *unitQueue) push(is []int) {
	w.mu.Lock()
	w.q = append(w.q, is...)
	w.mu.Unlock()
}

// RunUnits runs every unit through the batched engine path across a
// work-stealing pool of workers goroutines (workers <= 0 selects
// GOMAXPROCS). Unit i's result is always out[i]; because units are
// independent and each owns its engine, source, and obs registry, the
// results are bit-identical to RunUnitsSerial no matter how the steals
// interleave — the differential gate in diffgate.go enforces exactly
// that.
//
// A panicking unit costs only its own slot (zero-valued Result, error
// joined into the return). Once ctx is canceled no new unit starts;
// each abandoned unit is reported in the returned error.
func RunUnits(ctx context.Context, workers int, units []Unit) ([]engine.Result, error) {
	out, _, err := RunUnitsStats(ctx, workers, units)
	return out, err
}

// RunUnitsStats is RunUnits plus the scheduler's own observability: the
// per-worker registries merged into one ShardStats snapshot.
func RunUnitsStats(ctx context.Context, workers int, units []Unit) ([]engine.Result, ShardStats, error) {
	n := len(units)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]engine.Result, n)
	stats := ShardStats{Workers: workers, Units: n}
	if n == 0 {
		return out, stats, nil
	}

	var (
		mu   sync.Mutex
		errs []error
	)
	report := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	if workers == 1 {
		// Degenerate pool: same batched path, calling goroutine, no
		// queues to steal from. This is the workers=1 leg of the
		// deterministic-interleaving tests.
		w := &schedWorker{}
		reg := w.registry()
		for i := range units {
			if err := ctx.Err(); err != nil {
				report(fmt.Errorf("sim: canceled before unit %d (%s): %w", i, units[i].Label, err))
				continue
			}
			if err := runOneUnit(&units[i], &out[i], i, true); err != nil {
				report(err)
				continue
			}
			w.unitsRun.Inc()
			w.instructions.Add(out[i].Instructions)
		}
		stats.Metrics = reg.Snapshot(0)
		return out, stats, errors.Join(errs...)
	}

	// Deal contiguous index blocks across the workers; stealing
	// rebalances whatever the static split gets wrong.
	queues := make([]*unitQueue, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		q := &unitQueue{}
		if lo < n {
			q.q = make([]int, 0, hi-lo)
			// Reverse so popTail serves the block in ascending order.
			for i := hi - 1; i >= lo; i-- {
				q.q = append(q.q, i)
			}
		}
		queues[w] = q
	}

	snaps := make([]obs.Snapshot, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := &schedWorker{}
			reg := worker.registry()
			defer func() { snaps[id] = reg.Snapshot(0) }()
			self := queues[id]
			var loot []int
			for {
				i, ok := self.popTail()
				if !ok {
					// Local queue drained: scan victims round-robin from
					// our right-hand neighbor and take half of the first
					// non-empty queue found.
					worker.stealAttempts.Inc()
					loot = loot[:0]
					for v := 1; v < workers && len(loot) == 0; v++ {
						loot = queues[(id+v)%workers].stealHalf(loot)
					}
					if len(loot) == 0 {
						// Units are only ever removed, never added, so an
						// empty sweep means no unstarted work remains.
						return
					}
					worker.unitsStolen.Add(int64(len(loot)))
					self.push(loot)
					continue
				}
				if err := ctx.Err(); err != nil {
					report(fmt.Errorf("sim: canceled before unit %d (%s): %w", i, units[i].Label, err))
					continue
				}
				if err := runOneUnit(&units[i], &out[i], i, true); err != nil {
					report(err)
					continue
				}
				worker.unitsRun.Inc()
				worker.instructions.Add(out[i].Instructions)
			}
		}(w)
	}
	wg.Wait()

	// Merge the per-worker registries: snapshots are immutable plain
	// data, so wrapping them as shard results reuses the study-level
	// aggregation path.
	wrapped := make([]engine.Result, workers)
	for i := range snaps {
		wrapped[i] = engine.Result{Metrics: &snaps[i]}
	}
	if agg, ok := AggregateMetrics(wrapped...); ok {
		stats.Metrics = agg
		if v, found := agg.Get("sched_units_stolen_total"); found {
			stats.Steals = v.Value
		}
	}
	return out, stats, errors.Join(errs...)
}
