package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/obs/span"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// The sharded batch pipeline: every study decomposes into independent
// (config, trace) simulation units; RunUnits fans them across a
// work-stealing worker pool where each worker drives the engine's
// batched stepping path, and RunUnitsSerial keeps the single-threaded
// record-at-a-time reference path alive as the differential oracle
// (see diffgate.go). Unit i's result lands in slot i of the returned
// slice regardless of which worker ran it or in what order, so both
// paths produce identical output layouts.

// Unit is one independent simulation: a configuration applied to a
// freshly built trace source. NewSource is called once per run on the
// executing worker, so units never share mutable source state.
type Unit struct {
	Label      string // diagnostic name, e.g. "oltp-1/btb2"
	NewSource  func() trace.Source
	Config     core.Config
	Params     engine.Params
	ConfigName string
}

// ProfileUnit builds the Unit for one workload profile under one
// configuration — the shape every sweep in this package schedules.
func ProfileUnit(p workload.Profile, cfg core.Config, params engine.Params, configName string) Unit {
	return Unit{
		Label:      p.Name + "/" + configName,
		NewSource:  func() trace.Source { return workload.New(p) },
		Config:     cfg,
		Params:     params,
		ConfigName: configName,
	}
}

// RunUnitsSerial is the serial oracle: every unit runs in index order,
// on the calling goroutine, through the engine's record-at-a-time Run
// loop. It is deliberately boring — the differential gate trusts it.
// A panicking unit leaves its Result zero-valued and is reported in the
// returned error; later units still run.
func RunUnitsSerial(units []Unit) ([]engine.Result, error) {
	out := make([]engine.Result, len(units))
	var errs []error
	for i := range units {
		if _, _, err := runOneUnit(&units[i], &out[i], i, false, nil, 0); err != nil {
			errs = append(errs, err)
		}
	}
	return out, errors.Join(errs...)
}

// runOneUnit executes one unit into *res, converting a panic into an
// error carrying the unit index, label, and stack. batched selects the
// engine entry point: RunBatched (parallel pipeline) or Run (oracle).
// A non-nil rec threads span tracing through the engine's batched path
// and the unit's FileSource (if that is what NewSource builds), with
// the engine's phase spans attached under parent. bulk/slow report the
// engine's batch fast-path attribution (zero for the serial path).
func runOneUnit(u *Unit, res *engine.Result, i int, batched bool, rec *span.Recorder, parent span.ID) (bulk, slow int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: unit %d (%s) panicked: %v\n%s", i, u.Label, r, debug.Stack())
		}
	}()
	params := u.Params
	if rec.Enabled() {
		params.Spans = rec
		params.SpanParent = parent
	}
	eng := engine.New(u.Config, params)
	src := u.NewSource()
	if fs, ok := src.(*trace.FileSource); ok && rec.Enabled() {
		fs.SetSpans(rec, parent)
	}
	if batched {
		*res = eng.RunBatched(src, u.ConfigName)
	} else {
		*res = eng.Run(src, u.ConfigName)
	}
	bulk, slow = eng.BatchPathCounts()
	return bulk, slow, nil
}

// ShardStats describes one RunUnits invocation: how the units spread
// across workers. Metrics is the merged per-worker scheduler registry
// (units run, steal traffic, instructions simulated, busy time,
// run-queue depth) — per-worker registries are goroutine-local while
// running and cross the boundary as immutable snapshots merged through
// AggregateMetrics.
type ShardStats struct {
	Workers   int
	Units     int
	Steals    int64 // units that changed workers after initial distribution
	WallNanos int64 // wall time of the whole RunUnits invocation
	Metrics   obs.Snapshot
}

// Utilization returns the fraction of aggregate worker wall time spent
// executing units (0 when unknown): merged sched_busy_nanos_total over
// Workers x WallNanos. The gap is scheduling overhead plus tail idling
// — workers that drained every queue while a long unit finished
// elsewhere.
func (s ShardStats) Utilization() float64 {
	if s.WallNanos <= 0 || s.Workers <= 0 {
		return 0
	}
	busy := s.Metrics.Counter("sched_busy_nanos_total")
	return float64(busy) / (float64(s.WallNanos) * float64(s.Workers))
}

// schedWorker is one worker's goroutine-local scheduler instrumentation.
type schedWorker struct {
	unitsRun      obs.Counter   // units this worker executed
	unitsStolen   obs.Counter   // units this worker took from victims
	stealAttempts obs.Counter   // victim scans, successful or not
	instructions  obs.Counter   // instructions simulated by this worker
	bulkRecords   obs.Counter   // batched records that took the bulk fast path
	slowRecords   obs.Counter   // batched records stepped one at a time
	busyNanos     obs.Counter   // wall nanoseconds spent inside runOneUnit
	queueDepth    obs.Histogram // local run-queue depth after each pop
}

// registry enumerates the worker's counters in a fresh obs registry.
func (w *schedWorker) registry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("sched_units_run_total", "units", "simulation units executed by this worker", &w.unitsRun)
	reg.Counter("sched_units_stolen_total", "units", "units stolen from other workers' queues", &w.unitsStolen)
	reg.Counter("sched_steal_attempts_total", "scans", "victim-queue scans when the local queue drained", &w.stealAttempts)
	reg.Counter("sched_instructions_total", "instructions", "instructions simulated by this worker", &w.instructions)
	reg.Counter("sched_bulk_records_total", "records", "batched records taking the engine's bulk fast path", &w.bulkRecords)
	reg.Counter("sched_slow_records_total", "records", "batched records stepped through the per-record path", &w.slowRecords)
	reg.Counter("sched_busy_nanos_total", "nanoseconds", "wall time this worker spent executing units", &w.busyNanos)
	w.queueDepth.SetBounds(0, 1, 2, 4, 8, 16, 32, 64)
	reg.Histogram("sched_queue_depth", "units", "local run-queue depth observed after each pop", &w.queueDepth)
	return reg
}

// wallStart and wallElapsed read the host clock for scheduler busy-time
// telemetry. They are the scheduler's only wall-clock access; the
// readings feed sched_busy_nanos_total and ShardStats.WallNanos and
// never reach simulation results (the differential gate compares those
// bit-for-bit).
func wallStart() time.Time {
	//zbp:wallclock scheduler busy-time telemetry, never reaches simulation results
	return time.Now()
}

func wallElapsed(t0 time.Time) int64 {
	//zbp:wallclock scheduler busy-time telemetry, never reaches simulation results
	return int64(time.Since(t0))
}

// unitQueue is one worker's deque of pending unit indices. The owner
// pops from the tail; thieves take half from the head, preserving the
// owner's locality on recently assigned work.
type unitQueue struct {
	mu sync.Mutex
	q  []int
}

// popTail removes and returns the tail unit plus the queue depth left
// behind (telemetry: sched_queue_depth observes it on every pop).
func (w *unitQueue) popTail() (i, depth int, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.q)
	if n == 0 {
		return 0, 0, false
	}
	i = w.q[n-1]
	w.q = w.q[:n-1]
	return i, n - 1, true
}

// stealHalf appends the front half (rounded up) of the queue to into.
func (w *unitQueue) stealHalf(into []int) []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.q)
	if n == 0 {
		return into
	}
	k := (n + 1) / 2
	into = append(into, w.q[:k]...)
	w.q = w.q[:copy(w.q, w.q[k:])]
	return into
}

func (w *unitQueue) push(is []int) {
	w.mu.Lock()
	w.q = append(w.q, is...)
	w.mu.Unlock()
}

// RunUnits runs every unit through the batched engine path across a
// work-stealing pool of workers goroutines (workers <= 0 selects
// GOMAXPROCS). Unit i's result is always out[i]; because units are
// independent and each owns its engine, source, and obs registry, the
// results are bit-identical to RunUnitsSerial no matter how the steals
// interleave — the differential gate in diffgate.go enforces exactly
// that.
//
// A panicking unit costs only its own slot (zero-valued Result, error
// joined into the return). Once ctx is canceled no new unit starts;
// each abandoned unit is reported in the returned error.
func RunUnits(ctx context.Context, workers int, units []Unit) ([]engine.Result, error) {
	out, _, err := RunUnitsStats(ctx, workers, units)
	return out, err
}

// RunUnitsStats is RunUnits plus the scheduler's own observability: the
// per-worker registries merged into one ShardStats snapshot.
func RunUnitsStats(ctx context.Context, workers int, units []Unit) ([]engine.Result, ShardStats, error) {
	return RunUnitsTraced(ctx, workers, units, nil)
}

// RunUnitsTraced is RunUnitsStats with hierarchical span tracing: a
// non-nil tr collects one study span over the whole invocation, a
// worker span per pool worker, a unit span per executed unit (with the
// engine's phase/batch spans and the FileSource's refill spans nested
// beneath), and an instant steal event for every successful steal.
// Tracing never changes scheduling or results; a nil tr is the
// zero-cost disabled path RunUnitsStats uses.
func RunUnitsTraced(ctx context.Context, workers int, units []Unit, tr *span.Trace) ([]engine.Result, ShardStats, error) {
	n := len(units)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]engine.Result, n)
	stats := ShardStats{Workers: workers, Units: n}
	if n == 0 {
		return out, stats, nil
	}

	var (
		mu   sync.Mutex
		errs []error
	)
	report := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	wall0 := wallStart()
	srec := tr.NewRecorder(0)
	study := srec.Start(span.KindStudy, "study", 0)
	finishStudy := func() {
		study.EndArgs(int64(n), int64(stats.Workers))
		tr.Adopt(srec)
		stats.WallNanos = wallElapsed(wall0)
	}

	if workers == 1 {
		// Degenerate pool: same batched path, calling goroutine, no
		// queues to steal from. This is the workers=1 leg of the
		// deterministic-interleaving tests.
		w := &schedWorker{}
		reg := w.registry()
		wrec := tr.NewRecorder(1)
		ws := wrec.Start(span.KindWorker, "worker", study.ID())
		for i := range units {
			if err := ctx.Err(); err != nil {
				report(fmt.Errorf("sim: canceled before unit %d (%s): %w", i, units[i].Label, err))
				continue
			}
			w.queueDepth.Observe(int64(n - 1 - i))
			us := wrec.Start(span.KindUnit, units[i].Label, ws.ID())
			t0 := wallStart()
			bulk, slow, err := runOneUnit(&units[i], &out[i], i, true, wrec, us.ID())
			w.busyNanos.Add(wallElapsed(t0))
			us.EndArgs(out[i].Instructions, 0)
			if err != nil {
				report(err)
				continue
			}
			w.unitsRun.Inc()
			w.instructions.Add(out[i].Instructions)
			w.bulkRecords.Add(bulk)
			w.slowRecords.Add(slow)
		}
		ws.EndArgs(w.unitsRun.Value(), 0)
		tr.Adopt(wrec)
		stats.Metrics = reg.Snapshot(0)
		finishStudy()
		return out, stats, errors.Join(errs...)
	}

	// Deal contiguous index blocks across the workers; stealing
	// rebalances whatever the static split gets wrong.
	queues := make([]*unitQueue, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		q := &unitQueue{}
		if lo < n {
			q.q = make([]int, 0, hi-lo)
			// Reverse so popTail serves the block in ascending order.
			for i := hi - 1; i >= lo; i-- {
				q.q = append(q.q, i)
			}
		}
		queues[w] = q
	}

	snaps := make([]obs.Snapshot, workers)
	wrecs := make([]*span.Recorder, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := &schedWorker{}
			reg := worker.registry()
			// Worker recorders land in per-worker result slots and are
			// adopted after wg.Wait, like the registry snapshots.
			wrec := tr.NewRecorder(id + 1)
			ws := wrec.Start(span.KindWorker, "worker", study.ID())
			defer func() {
				ws.EndArgs(worker.unitsRun.Value(), worker.unitsStolen.Value())
				snaps[id] = reg.Snapshot(0)
				wrecs[id] = wrec
			}()
			self := queues[id]
			var loot []int
			for {
				i, depth, ok := self.popTail()
				if !ok {
					// Local queue drained: scan victims round-robin from
					// our right-hand neighbor and take half of the first
					// non-empty queue found.
					worker.stealAttempts.Inc()
					loot = loot[:0]
					victim := -1
					for v := 1; v < workers && len(loot) == 0; v++ {
						vi := (id + v) % workers
						loot = queues[vi].stealHalf(loot)
						if len(loot) > 0 {
							victim = vi
						}
					}
					if len(loot) == 0 {
						// Units are only ever removed, never added, so an
						// empty sweep means no unstarted work remains.
						return
					}
					worker.unitsStolen.Add(int64(len(loot)))
					wrec.Instant(span.KindSteal, "steal", ws.ID(), int64(len(loot)), int64(victim+1))
					self.push(loot)
					continue
				}
				worker.queueDepth.Observe(int64(depth))
				if err := ctx.Err(); err != nil {
					report(fmt.Errorf("sim: canceled before unit %d (%s): %w", i, units[i].Label, err))
					continue
				}
				us := wrec.Start(span.KindUnit, units[i].Label, ws.ID())
				t0 := wallStart()
				bulk, slow, err := runOneUnit(&units[i], &out[i], i, true, wrec, us.ID())
				worker.busyNanos.Add(wallElapsed(t0))
				us.EndArgs(out[i].Instructions, 0)
				if err != nil {
					report(err)
					continue
				}
				worker.unitsRun.Inc()
				worker.instructions.Add(out[i].Instructions)
				worker.bulkRecords.Add(bulk)
				worker.slowRecords.Add(slow)
			}
		}(w)
	}
	wg.Wait()
	for _, r := range wrecs {
		tr.Adopt(r)
	}

	// Merge the per-worker registries: snapshots are immutable plain
	// data, so wrapping them as shard results reuses the study-level
	// aggregation path.
	wrapped := make([]engine.Result, workers)
	for i := range snaps {
		wrapped[i] = engine.Result{Metrics: &snaps[i]}
	}
	if agg, ok := AggregateMetrics(wrapped...); ok {
		stats.Metrics = agg
		if v, found := agg.Get("sched_units_stolen_total"); found {
			stats.Steals = v.Value
		}
	}
	finishStudy()
	return out, stats, errors.Join(errs...)
}
