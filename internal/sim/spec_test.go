package sim

import (
	"os"
	"path/filepath"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Trace: "zos-lspr-cb84", Instructions: 1000}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{},                           // nothing selected
		{Trace: "x", TraceFile: "y"}, // two selections
		{Trace: "zos-lspr-cb84", Config: "bogus"},        // unknown config
		{Trace: "zos-lspr-cb84", Custom: &core.Config{}}, // invalid custom
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
	// Default config name is the two-level design.
	if good.configName() != ConfigBTB2 {
		t.Errorf("default config = %q", good.configName())
	}
}

func TestSpecRoundTripAndRun(t *testing.T) {
	params := engine.DefaultParams()
	params.WarmupInstructions = 10_000
	prof := quickProfile()
	prof.Instructions = 60_000
	spec := Spec{
		Profile: &prof,
		Config:  ConfigNoBTB2,
		Params:  &params,
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := SaveSpec(path, spec); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Profile == nil || loaded.Profile.Name != prof.Name {
		t.Fatalf("profile lost in round trip: %+v", loaded)
	}
	if loaded.Params.WarmupInstructions != 10_000 {
		t.Error("params lost in round trip")
	}
	// Running the loaded spec reproduces the direct run exactly.
	direct, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cycles != replayed.Cycles || direct.Outcomes != replayed.Outcomes {
		t.Error("spec replay diverged from direct run")
	}
	if direct.Instructions != 50_000 { // 60k minus 10k warmup
		t.Errorf("instructions = %d", direct.Instructions)
	}
}

func TestSpecCustomConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Tracker.Count = 5
	prof := quickProfile()
	prof.Instructions = 30_000
	spec := Spec{Profile: &prof, Custom: &cfg}
	r, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Config != "custom" {
		t.Errorf("config label = %q", r.Config)
	}
}

func TestLoadSpecErrors(t *testing.T) {
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := writeFile(path, "{}"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestSaveSpecRejectsInvalid(t *testing.T) {
	if err := SaveSpec(filepath.Join(t.TempDir(), "x.json"), Spec{}); err == nil {
		t.Error("invalid spec saved")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
