package sim

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

// The serial-oracle differential suite: every Table 4 workload, three
// seeds each, run through the single-threaded record-at-a-time oracle
// and through the work-stealing batched pipeline at worker counts 1, 2,
// and GOMAXPROCS, comparing full observability snapshots field by
// field. This is the gate that lets every optimization in the pipeline
// land: if batching or scheduling perturbs one counter anywhere in the
// hierarchy, this fails with the exact metric named.

// differentialUnits builds the gate's unit set: all 13 Table 4 profiles
// x three seeds under the full two-level configuration, with warmup and
// interval snapshots armed so the counter-triggered boundaries are part
// of what must match.
func differentialUnits(instructions int) []Unit {
	params := engine.DefaultParams()
	params.WarmupInstructions = 5_000
	params.SnapshotInterval = 7_500
	var units []Unit
	for _, p := range workload.Table4Profiles(instructions) {
		for s, seed := range []int64{p.Seed, p.Seed + 101, p.Seed + 9973} {
			pp := p
			pp.Seed = seed
			pp.Name = fmt.Sprintf("%s/seed%d", p.Name, s)
			units = append(units, ProfileUnit(pp, core.DefaultConfig(), params, ConfigBTB2))
		}
	}
	return units
}

// TestDifferentialGate is the headline equivalence proof: 39 units
// (13 workloads x 3 seeds), serial oracle vs parallel pipeline at three
// worker counts, bit-identical results demanded everywhere.
func TestDifferentialGate(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate in -short mode")
	}
	units := differentialUnits(30_000)
	serial, err := RunUnitsSerial(units)
	if err != nil {
		t.Fatalf("serial oracle failed: %v", err)
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			parallel, err := RunUnits(context.Background(), workers, units)
			if err != nil {
				t.Fatalf("parallel pipeline failed: %v", err)
			}
			mismatches := 0
			for i := range units {
				for _, d := range DiffResults(units[i].Label, serial[i], parallel[i]) {
					t.Error(d)
					mismatches++
					if mismatches > 20 {
						t.Fatal("too many mismatches; truncating report")
					}
				}
			}
		})
	}
}

// TestVerifyDifferential exercises the packaged gate entry point (the
// one cmd/experiments ships) on a smaller unit set, and proves it
// actually detects divergence when fed results that differ.
func TestVerifyDifferential(t *testing.T) {
	params := engine.DefaultParams()
	params.WarmupInstructions = 2_000
	profiles := workload.Table4Profiles(12_000)[:3]
	var units []Unit
	for _, p := range profiles {
		units = append(units, ProfileUnit(p, core.DefaultConfig(), params, ConfigBTB2))
	}
	mismatches, err := VerifyDifferential(context.Background(), 2, units)
	if err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	if len(mismatches) != 0 {
		t.Fatalf("gate reported %d mismatches on identical paths:\n%v", len(mismatches), mismatches)
	}

	// A gate that cannot fail proves nothing: perturb one result and
	// make sure the comparator notices.
	serial, _ := RunUnitsSerial(units[:1])
	perturbed := serial[0]
	perturbed.Cycles++
	if diffs := DiffResults("perturbed", serial[0], perturbed); len(diffs) == 0 {
		t.Fatal("DiffResults missed a perturbed Cycles field")
	}
}

// TestDifferentialGateAcrossConfigs runs a reduced profile set under
// every Table 3 configuration — the oracle must hold for baseline and
// large-BTB1 geometries, not just the shipping two-level design.
func TestDifferentialGateAcrossConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate in -short mode")
	}
	params := engine.DefaultParams()
	params.WarmupInstructions = 3_000
	profiles := workload.Table4Profiles(15_000)[:4]
	var units []Unit
	for _, p := range profiles {
		for _, name := range []string{ConfigNoBTB2, ConfigBTB2, ConfigLargeL1} {
			units = append(units, ProfileUnit(p, Table3()[name], params, name))
		}
	}
	mismatches, err := VerifyDifferential(context.Background(), 0, units)
	if err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	for _, d := range mismatches {
		t.Error(d)
	}
}
