package sim

import (
	"encoding/json"
	"fmt"
	"os"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// Spec is a reproducible experiment description: which workload, which
// hierarchy configuration, and which engine parameters. Specs serialize
// to JSON so experiment setups can be versioned and replayed exactly
// (`zsim -spec file.json`).
type Spec struct {
	// Workload selection: a Table 4 profile name, a ZBPT trace file, or
	// a fully custom profile. Exactly one must be set.
	Trace     string            `json:"trace,omitempty"`
	TraceFile string            `json:"traceFile,omitempty"`
	Profile   *workload.Profile `json:"profile,omitempty"`

	// Instructions overrides the trace length for named profiles.
	Instructions int `json:"instructions,omitempty"`

	// Config is a Table 3 configuration name ("no-btb2", "btb2",
	// "large-btb1"); Custom overrides it with a full configuration.
	Config string       `json:"config,omitempty"`
	Custom *core.Config `json:"custom,omitempty"`

	// Params overrides the default engine parameters when present.
	Params *engine.Params `json:"params,omitempty"`
}

// Validate checks the spec's internal consistency.
func (s Spec) Validate() error {
	n := 0
	if s.Trace != "" {
		n++
	}
	if s.TraceFile != "" {
		n++
	}
	if s.Profile != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("sim: spec needs exactly one of trace, traceFile, profile (got %d)", n)
	}
	if s.Custom == nil {
		if _, ok := Table3()[s.configName()]; !ok {
			return fmt.Errorf("sim: unknown configuration %q", s.configName())
		}
	} else if err := s.Custom.Validate(); err != nil {
		return err
	}
	if s.Params != nil {
		if err := s.Params.Validate(); err != nil {
			return err
		}
	}
	if s.Profile != nil {
		if err := s.Profile.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s Spec) configName() string {
	if s.Config == "" {
		return ConfigBTB2
	}
	return s.Config
}

// source builds the trace source the spec describes.
func (s Spec) source() (trace.Source, error) {
	switch {
	case s.Trace != "":
		insts := s.Instructions
		p, err := workload.ByName(s.Trace, insts)
		if err != nil {
			return nil, err
		}
		return workload.New(p), nil
	case s.TraceFile != "":
		return trace.ReadFile(s.TraceFile)
	case s.Profile != nil:
		return workload.New(*s.Profile), nil
	default:
		return nil, fmt.Errorf("sim: empty spec")
	}
}

// Run executes the spec and returns the result.
func (s Spec) Run() (engine.Result, error) {
	if err := s.Validate(); err != nil {
		return engine.Result{}, err
	}
	src, err := s.source()
	if err != nil {
		return engine.Result{}, err
	}
	cfg := Table3()[s.configName()]
	name := s.configName()
	if s.Custom != nil {
		cfg = *s.Custom
		name = "custom"
	}
	params := engine.DefaultParams()
	if s.Params != nil {
		params = *s.Params
	}
	return engine.Run(src, cfg, params, name), nil
}

// Unit converts a validated spec into one schedulable simulation unit —
// the currency of RunUnits and of the zsimd job service. Named-profile
// and custom-profile specs build a fresh deterministic source per run;
// TraceFile specs are loaded once here (errors surface at admission
// time, not on a worker) and replayed via Reset.
func (s Spec) Unit() (Unit, error) {
	if err := s.Validate(); err != nil {
		return Unit{}, err
	}
	cfg := Table3()[s.configName()]
	name := s.configName()
	if s.Custom != nil {
		cfg = *s.Custom
		name = "custom"
	}
	params := engine.DefaultParams()
	if s.Params != nil {
		params = *s.Params
	}
	src, err := s.source()
	if err != nil {
		return Unit{}, err
	}
	return Unit{
		Label:      src.Name() + "/" + name,
		NewSource:  func() trace.Source { src.Reset(); return src },
		Config:     cfg,
		Params:     params,
		ConfigName: name,
	}, nil
}

// LoadSpec reads and validates a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	return s, nil
}

// SaveSpec writes a spec as indented JSON.
func SaveSpec(path string, s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
