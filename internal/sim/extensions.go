package sim

import (
	"fmt"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// The studies in this file cover the paper's Section 6 future-work
// directions: BTB2 congruence-class width, multi-block transfers, and
// alternative BTB1-miss definitions.

// BTB2RowGeometry builds a 24k-entry BTB2 whose rows cover the given
// number of instruction bytes (32 = shipping; 64/128 = the future-work
// trade-off of more tag-matching branches per search vs congruence-class
// overflow). Row count stays at 4096 so total capacity is constant.
func BTB2RowGeometry(rowBytes int) btb.Config {
	var lo uint
	switch rowBytes {
	case 32:
		lo = 58
	case 64:
		lo = 57
	case 128:
		lo = 56
	default:
		panic(fmt.Sprintf("sim: unsupported BTB2 row coverage %d", rowBytes))
	}
	return btb.Config{Name: "BTB2", Rows: 4096, Ways: 6, IndexHi: lo - 11, IndexLo: lo}
}

// SweepRowCoverage measures the Section 6 congruence-class trade-off:
// wider BTB2 rows transfer a 4 KB block in fewer reads (higher bus
// utilization) but can overflow when a sequential code stream carries
// more than 6 ever-taken branches per row.
func SweepRowCoverage(profiles []workload.Profile, params engine.Params, widths []int) ([]SweepPoint, error) {
	variants := make([]core.Config, len(widths))
	for i, w := range widths {
		cfg := core.DefaultConfig()
		cfg.BTB2 = BTB2RowGeometry(w)
		variants[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, core.OneLevelConfig(), variants)
	out := make([]SweepPoint, 0, len(widths))
	for i, w := range widths {
		out = append(out, SweepPoint{
			Label:       fmt.Sprintf("%dB rows (%d reads/block)", w, 4096/w),
			Value:       float64(w),
			Improvement: imps[i],
			Shipping:    w == 32,
		})
	}
	return out, err
}

// SweepMissMode compares the Section 3.4 / Section 6 miss-definition
// alternatives: early-speculative, late-precise (decode surprise), and
// their combination.
func SweepMissMode(profiles []workload.Profile, params engine.Params) ([]SweepPoint, error) {
	modes := []core.MissMode{core.MissSpeculative, core.MissDecodeSurprise, core.MissBoth}
	variants := make([]core.Config, len(modes))
	for i, m := range modes {
		cfg := core.DefaultConfig()
		cfg.MissMode = m
		variants[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, core.OneLevelConfig(), variants)
	out := make([]SweepPoint, 0, len(modes))
	for i, m := range modes {
		out = append(out, SweepPoint{
			Label:       m.String(),
			Value:       float64(m),
			Improvement: imps[i],
			Shipping:    m == core.MissSpeculative,
		})
	}
	return out, err
}

// MultiBlockStudy measures the bounded multi-block transfer extension
// against the shipping single-block design.
func MultiBlockStudy(profiles []workload.Profile, params engine.Params) ([]SweepPoint, error) {
	settings := []bool{false, true}
	variants := make([]core.Config, len(settings))
	for i, on := range settings {
		cfg := core.DefaultConfig()
		cfg.MultiBlockTransfer = on
		variants[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, core.OneLevelConfig(), variants)
	out := make([]SweepPoint, 0, len(settings))
	for i, on := range settings {
		label := "single-block (shipping)"
		if on {
			label = "multi-block chase"
		}
		out = append(out, SweepPoint{
			Label:       label,
			Value:       b2f(on),
			Improvement: imps[i],
			Shipping:    !on,
		})
	}
	return out, err
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// PreloadStudy compares the software branch-preload facility (BPP-style
// hint instructions at function entries, a BTBP write source per Section
// 3.1) against the hardware bulk preload, on the same program topology:
//
//	base          — config 1, no hints
//	sw-preload    — config 1, hinted trace (hint instructions cost
//	                dispatch slots, so their overhead is included)
//	hw-btb2       — config 2, no hints
//	sw+hw         — config 2, hinted trace
func PreloadStudy(profile workload.Profile, params engine.Params) []SweepPoint {
	plain := profile
	plain.PreloadHints = false
	hinted := profile
	hinted.PreloadHints = true

	base := engine.Run(workload.New(plain), core.OneLevelConfig(), params, "base")
	rows := []struct {
		label string
		prof  workload.Profile
		cfg   core.Config
		ship  bool
	}{
		{"sw preload only (config 1 + hints)", hinted, core.OneLevelConfig(), false},
		{"hw bulk preload (config 2)", plain, core.DefaultConfig(), true},
		{"sw + hw combined (config 2 + hints)", hinted, core.DefaultConfig(), false},
	}
	var out []SweepPoint
	for i, r := range rows {
		res := engine.Run(workload.New(r.prof), r.cfg, params, r.label)
		out = append(out, SweepPoint{
			Label:       r.label,
			Value:       float64(i),
			Improvement: res.Improvement(base),
			Shipping:    r.ship,
		})
	}
	return out
}

// SharingResult quantifies multiprogramming interference in the branch
// predictor: the paper's Table 4 includes exactly such a mix ("two of
// the LSPR workloads time sliced on one processor") and its background
// section calls out aliasing "among branches in different threads".
type SharingResult struct {
	Name string
	// SoloCPI is the instruction-weighted CPI of the workloads run each
	// on a private predictor; MixedCPI shares one predictor with
	// time-slicing. The gap is predictor interference.
	SoloCPI  float64
	MixedCPI float64
	// InterferencePct is the CPI degradation from sharing.
	InterferencePct float64
}

// SharingStudy runs two workloads alone and time-sliced (quantum
// instructions per slice) under one configuration, returning the
// interference measurement.
func SharingStudy(a, b workload.Profile, quantum int, cfg core.Config,
	params engine.Params, name string) SharingResult {
	ra := engine.Run(workload.New(a), cfg, params, name)
	rb := engine.Run(workload.New(b), cfg, params, name)
	soloCycles := ra.Cycles + rb.Cycles
	soloInsts := float64(ra.Instructions + rb.Instructions)

	mix := trace.NewInterleaveSource(quantum, workload.New(a), workload.New(b))
	rm := engine.Run(mix, cfg, params, name)

	res := SharingResult{
		Name:     name,
		SoloCPI:  soloCycles / soloInsts,
		MixedCPI: rm.CPI(),
	}
	res.InterferencePct = 100 * (res.MixedCPI - res.SoloCPI) / res.SoloCPI
	return res
}

// SweepBTBPSize varies the preload table's capacity (ways at the fixed
// 128-row geometry). The BTBP is the hierarchy's linchpin — see the
// BTBP-bypass ablation — so its sizing is worth a curve: too small and
// installs die before promotion; the shipping design uses 6 ways (768
// branches).
func SweepBTBPSize(profiles []workload.Profile, params engine.Params, ways []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, w := range ways {
		base := core.OneLevelConfig()
		base.BTBP = btb.Config{Name: "BTBP", Rows: 128, Ways: w, IndexHi: 52, IndexLo: 58}
		cfg := core.DefaultConfig()
		cfg.BTBP = base.BTBP
		imp, err := averageImprovement(profiles, params, base, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, SweepPoint{
			Label:       fmt.Sprintf("%d branches (128 x %d)", 128*w, w),
			Value:       float64(128 * w),
			Improvement: imp,
			Shipping:    w == 6,
		})
	}
	return out, nil
}

// SweepInstallDelay varies the surprise-install write latency: how long
// a resolved surprise branch takes to become visible in the BTBP. The
// latency class of Figure 4 ("due to latency for writing surprise
// branches into the prediction tables") scales with it.
func SweepInstallDelay(profiles []workload.Profile, params engine.Params, delays []uint64) ([]SweepPoint, error) {
	variants := make([]core.Config, len(delays))
	for i, d := range delays {
		cfg := core.DefaultConfig()
		cfg.SurpriseInstallDelay = d
		variants[i] = cfg
	}
	imps, err := averageImprovements(profiles, params, core.OneLevelConfig(), variants)
	out := make([]SweepPoint, 0, len(delays))
	for i, d := range delays {
		out = append(out, SweepPoint{
			Label:       fmt.Sprintf("%d cycles", d),
			Value:       float64(d),
			Improvement: imps[i],
			Shipping:    d == 24,
		})
	}
	return out, err
}
