package zsimd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bulkpreload/internal/jobq"
)

func postJob(t *testing.T, url, tenant string, spec json.RawMessage) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"tenant":%q,"spec":%s}`, tenant, spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPSubmitPollScrape walks the primary client path: submit a
// job, poll its status to completion, and scrape the metrics surface.
func TestHTTPSubmitPollScrape(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CheckpointInterval: -1})
	s.Start()
	defer shutdownNow(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, "acme", testSpec(200_000))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var job jobq.Job
	decodeInto(t, resp, &job)
	if job.ID == "" {
		t.Fatal("submit returned no job ID")
	}

	waitFor(t, 30*time.Second, "job done via HTTP", func() bool {
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			return false
		}
		var j jobq.Job
		decodeInto(t, r, &j)
		return j.State == jobq.StateDone && len(j.Result) > 0
	})

	var listing struct {
		Depth jobq.Depth `json:"depth"`
		Jobs  []jobq.Job `json:"jobs"`
	}
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, r, &listing)
	if listing.Depth.Done != 1 || len(listing.Jobs) != 1 {
		t.Fatalf("listing = %+v, want one done job", listing)
	}

	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, want := range []string{"svc_jobs_done_total 1", "svc_tenant_acme_admitted_total 1", "svc_job_latency_ms", "svc_queue_pending 0"} {
		if !bytes.Contains(text, []byte(want)) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, text)
		}
	}

	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", r.StatusCode)
	}
	r.Body.Close()
}

// TestHTTPBackpressure: with no workers draining the queue, the
// admission layer sheds — queue-full submissions get 429 with a
// Retry-After, never a stall.
func TestHTTPBackpressure(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, MaxQueueDepth: 2})
	// Deliberately not started: jobs pile up in pending.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownNow(t, s)

	for i := 0; i < 2; i++ {
		resp := postJob(t, ts.URL, "acme", testSpec(100_000))
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
	}
	resp := postJob(t, ts.URL, "acme", testSpec(100_000))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e apiError
	decodeInto(t, resp, &e)
	if !strings.Contains(e.Error, "queue full") {
		t.Fatalf("429 body %q does not explain the shed", e.Error)
	}
	if v, err := s.m.counterValue("svc_admission_rejected_full_total"); err != nil || v != 1 {
		t.Fatalf("svc_admission_rejected_full_total = %d, %v; want 1", v, err)
	}
	if d := s.Queue().Depth(); d.Pending != 2 {
		t.Fatalf("pending depth = %d, want bounded at 2", d.Pending)
	}
}

// TestHTTPTenantRateLimit: per-tenant token buckets shed one tenant's
// burst without touching another's.
func TestHTTPTenantRateLimit(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, TenantRate: 0.001, TenantBurst: 1, MaxQueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownNow(t, s)

	resp := postJob(t, ts.URL, "alpha", testSpec(100_000))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alpha submit = %d, want 202", resp.StatusCode)
	}
	resp = postJob(t, ts.URL, "alpha", testSpec(100_000))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alpha submit = %d, want 429 (bucket empty)", resp.StatusCode)
	}
	resp = postJob(t, ts.URL, "beta", testSpec(100_000))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta submit = %d, want 202 (independent bucket)", resp.StatusCode)
	}
	if v, err := s.m.counterValue("svc_tenant_alpha_rejected_total"); err != nil || v != 1 {
		t.Fatalf("svc_tenant_alpha_rejected_total = %d, %v; want 1", v, err)
	}
}

// TestHTTPRejectsBadSpecAtAdmission: an invalid spec earns a 400 at
// submit time, not a dead-letter after doomed attempts.
func TestHTTPRejectsBadSpecAtAdmission(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownNow(t, s)

	resp := postJob(t, ts.URL, "acme", json.RawMessage(`{"trace":"no-such-profile"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-spec submit = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	r, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", r.StatusCode)
	}
	r.Body.Close()
}

// TestHTTPDrainingRefusesSubmissions: once Shutdown begins, new
// submissions get 503 and healthz reports draining.
func TestHTTPDrainingRefusesSubmissions(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	shutdownNow(t, s)

	resp := postJob(t, ts.URL, "acme", testSpec(100_000))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", r.StatusCode)
	}
	r.Body.Close()
}
