// Package zsimd is the simulation-as-a-service core behind cmd/zsimd:
// a pool of simulation workers fed from a crash-safe persistent job
// queue (internal/jobq), with admission control, retry/dead-letter
// policy, per-job deadlines, ZBPC checkpoint/resume across restarts,
// graceful drain, and a full observability surface on the existing
// obs registry, Live endpoints, and span tracer.
//
// Failure model (see docs/ROBUSTNESS.md):
//
//   - kill -9 at any instant: acknowledged jobs survive (fsynced
//     journal); jobs running at the crash are requeued and resume from
//     their last durable ZBPC checkpoint, and the resumed result is
//     bit-identical to a serial checkpoint+resume oracle.
//   - overload: new work is shed with 429 + Retry-After (bounded
//     pending backlog, per-tenant token buckets) before running work is
//     ever stalled.
//   - poison jobs: panics are isolated to their job; a job that keeps
//     failing dead-letters after MaxAttempts with capped exponential
//     backoff + deterministic jitter between attempts.
//   - SIGTERM: drain in-flight jobs up to a deadline, checkpoint
//     whatever is still running at the exact record boundary it
//     reached, and hand the rest to the next incarnation.
package zsimd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/jobq"
	"bulkpreload/internal/obs/span"
	"bulkpreload/internal/sim"
)

// Config tunes the service. Zero values select documented defaults.
type Config struct {
	// Dir is the persistent state directory: job journal plus per-job
	// ZBPC checkpoints. Required.
	Dir string

	// Workers is the simulation worker pool size (default 2).
	Workers int

	// MaxQueueDepth bounds the pending backlog; submissions beyond it
	// get 429 (default 64).
	MaxQueueDepth int

	// MaxAttempts dead-letters a job after this many failed attempts
	// (default 3).
	MaxAttempts int

	// Retry shapes the backoff between attempts (defaults to
	// jobq.DefaultBackoff).
	Retry jobq.Backoff

	// JobDeadline bounds one attempt's wall time; 0 means unbounded.
	// A deadline hit counts as a failed attempt.
	JobDeadline time.Duration

	// CheckpointInterval is how many committed instructions between
	// durable ZBPC checkpoints of a running job (default 200k; < 0
	// disables interval checkpoints — cancellation still checkpoints).
	CheckpointInterval int64

	// DrainTimeout is how long Shutdown lets in-flight jobs finish
	// before checkpoint-and-release (default 5s).
	DrainTimeout time.Duration

	// TenantRate and TenantBurst shape each tenant's admission token
	// bucket (rate <= 0 disables rate limiting).
	TenantRate  float64
	TenantBurst int

	// Now supplies the wall clock for queue backoffs and admission
	// buckets (tests inject a fake). Nil means time.Now.
	Now func() time.Time

	// Spans, when non-nil, collects a span per worker and per job
	// attempt, with the engine's phase spans nested beneath.
	Spans *span.Trace
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.JobDeadline < 0 {
		c.JobDeadline = 0
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 200_000
	}
	if c.CheckpointInterval < 0 {
		c.CheckpointInterval = 0
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 8
	}
	return c
}

// Service is one zsimd instance.
type Service struct {
	cfg     Config
	q       *jobq.Queue
	rec     jobq.Recovery
	limiter *jobq.TenantLimiter

	m *metrics

	// dequeueCtx gates pulling new jobs; jobCtx gates running ones.
	// Shutdown cancels the first immediately and the second at the
	// drain deadline.
	dequeueCtx    context.Context
	cancelDequeue context.CancelFunc
	jobCtx        context.Context
	cancelJobs    context.CancelCauseFunc

	draining atomic.Bool
	wg       sync.WaitGroup
	started  atomic.Bool
}

// errDraining marks job cancellations caused by shutdown rather than a
// deadline: those release the job (no attempt burned) instead of
// failing it.
var errDraining = errors.New("zsimd: draining for shutdown")

// New opens (or creates) the service state in cfg.Dir and recovers any
// jobs a previous incarnation left behind. Call Start to begin
// executing jobs.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("zsimd: Config.Dir is required")
	}
	q, rec, err := jobq.Open(cfg.Dir, jobq.Options{
		MaxDepth:    cfg.MaxQueueDepth,
		MaxAttempts: cfg.MaxAttempts,
		Retry:       cfg.Retry,
		Now:         cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		q:       q,
		rec:     rec,
		limiter: jobq.NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
		m:       newMetrics(q),
	}
	s.dequeueCtx, s.cancelDequeue = context.WithCancel(context.Background())
	s.jobCtx, s.cancelJobs = context.WithCancelCause(context.Background())
	s.m.jobsRecovered(len(rec.Requeued), rec.Damage != nil)
	return s, nil
}

// Recovery reports what New found in the persistent state.
func (s *Service) Recovery() jobq.Recovery { return s.rec }

// Queue exposes the underlying queue (tests, runbooks).
func (s *Service) Queue() *jobq.Queue { return s.q }

// Start launches the worker pool.
func (s *Service) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
}

// worker pulls and executes jobs until the dequeue context dies.
func (s *Service) worker(id int) {
	defer s.wg.Done()
	var rec *span.Recorder
	var ws span.Span
	if s.cfg.Spans != nil {
		rec = s.cfg.Spans.NewRecorder(id + 1)
		ws = rec.Start(span.KindWorker, "svc-worker", 0)
		defer func() {
			ws.EndArgs(0, 0)
			s.cfg.Spans.Adopt(rec)
		}()
	}
	for {
		if s.dequeueCtx.Err() != nil {
			return
		}
		job, err := s.q.Next(s.dequeueCtx)
		if err != nil {
			return
		}
		s.m.inflightDelta(+1)
		s.runJob(job, rec, ws.ID())
		s.m.inflightDelta(-1)
	}
}

// runJob executes one attempt of one job, translating the outcome into
// a queue transition: Done, Fail (retry or dead-letter), or Release
// (shutdown drain). Panics are isolated to the job.
func (s *Service) runJob(job jobq.Job, rec *span.Recorder, parent span.ID) {
	start := wallStart()
	var js span.Span
	if rec.Enabled() {
		js = rec.Start(span.KindUnit, job.ID+"/"+job.Tenant, parent)
	}
	res, runErr := s.execute(job, rec, js.ID())
	if rec.Enabled() {
		js.EndArgs(res.Instructions, int64(job.Attempt))
	}

	switch {
	case runErr == nil:
		payload, err := json.Marshal(res)
		if err != nil {
			payload = []byte(fmt.Sprintf(`{"marshalError":%q}`, err.Error()))
		}
		if err := s.q.Done(job.ID, payload); err == nil {
			s.m.jobDone(job.Tenant, res.Instructions, wallElapsedMillis(start))
		}
	case errors.Is(runErr, engine.ErrRunCanceled) && errors.Is(context.Cause(s.jobCtx), errDraining):
		// Shutdown drain: the engine already checkpointed the stop
		// boundary through the sink; hand the job back untouched.
		if err := s.q.Release(job.ID); err == nil {
			s.m.jobReleased()
		}
	default:
		dead, _, err := s.q.Fail(job.ID, runErr.Error())
		if err != nil {
			return
		}
		if dead {
			s.m.jobDead(job.Tenant)
		} else {
			s.m.jobRetried(job.Tenant)
		}
	}
}

// execute runs the simulation attempt itself: spec decode, checkpoint
// plumbing, resume-or-run, panic isolation.
func (s *Service) execute(job jobq.Job, rec *span.Recorder, parent span.ID) (res engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("zsimd: job %s panicked: %v\n%s", job.ID, r, debug.Stack())
		}
	}()

	var spec sim.Spec
	if jerr := json.Unmarshal(job.Payload, &spec); jerr != nil {
		return engine.Result{}, fmt.Errorf("zsimd: job %s payload does not decode: %w", job.ID, jerr)
	}
	unit, uerr := spec.Unit()
	if uerr != nil {
		return engine.Result{}, fmt.Errorf("zsimd: job %s spec rejected: %w", job.ID, uerr)
	}

	params := unit.Params
	if s.cfg.CheckpointInterval > 0 {
		params.CheckpointInterval = s.cfg.CheckpointInterval
	}
	params.CheckpointSink = func(ck *engine.Checkpoint) {
		// Durability order matters: the checkpoint file must be on disk
		// before the journal points at it.
		if werr := engine.WriteCheckpointFile(s.q.CheckpointPath(job.ID), ck); werr != nil {
			return
		}
		if merr := s.q.MarkCheckpoint(job.ID, ck.Instructions); merr == nil {
			s.m.checkpointWritten()
		}
	}
	if rec.Enabled() {
		params.Spans = rec
		params.SpanParent = parent
	}

	ctx := s.jobCtx
	if s.cfg.JobDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobDeadline)
		defer cancel()
	}

	eng := engine.New(unit.Config, params)
	src := unit.NewSource()

	// Resume from the job's durable checkpoint when one exists; any
	// problem reading it falls back to a from-scratch run (the
	// checkpoint is an optimization, never a correctness dependency).
	if job.CheckpointAt > 0 {
		if ck, cerr := engine.ReadCheckpointFile(s.q.CheckpointPath(job.ID)); cerr == nil {
			s.q.MarkResumedFrom(job.ID, ck.Instructions)
			s.m.resumed()
			return eng.ResumeContext(ctx, src, ck, engine.DefaultCancelPoll)
		}
	}
	s.q.MarkResumedFrom(job.ID, 0)
	return eng.RunContext(ctx, src, unit.ConfigName, engine.DefaultCancelPoll)
}

// Shutdown drains the service: no new jobs are admitted or dequeued;
// in-flight jobs get up to DrainTimeout (bounded additionally by ctx)
// to finish, after which they are canceled — each checkpoints the exact
// record boundary it reached and returns to pending for the next
// incarnation. The queue journal is closed last. Idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cancelDequeue()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()

	drain := time.NewTimer(s.cfg.DrainTimeout)
	defer drain.Stop()
	select {
	case <-done:
	case <-drain.C:
		s.cancelJobs(errDraining)
	case <-ctx.Done():
		s.cancelJobs(errDraining)
	}
	// After cancellation workers unwind within one poll interval; wait
	// without a bound — RunContext's poll guarantees progress.
	<-done
	return s.q.Close()
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// wallStart/wallElapsedMillis are the service's job-latency clock.
func wallStart() time.Time { return time.Now() }

func wallElapsedMillis(t0 time.Time) int64 { return int64(time.Since(t0) / time.Millisecond) }
