package zsimd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bulkpreload/internal/jobq"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/sim"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs        submit a sim.Spec; 202 + job, or 429/503 when shed
//	GET  /v1/jobs        list all jobs (id, state, attempts, checkpoints)
//	GET  /v1/jobs/{id}   one job, including its result when done
//	GET  /healthz        liveness + drain state + queue depth
//	GET  /metrics        Prometheus text (service + per-tenant metrics)
//	GET  /snapshot       raw obs snapshot JSON
//	GET  /debug/vars     expvar
//
// Metrics endpoints publish a fresh snapshot per scrape through an
// obs.Live, keeping the reader path race-free exactly like the
// simulation runner's live endpoint.
func (s *Service) Handler() http.Handler {
	live := &obs.Live{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	publishThen := func(h http.Handler) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			live.Publish(s.m.snapshot())
			h.ServeHTTP(w, r)
		}
	}
	inner := live.Handler()
	mux.HandleFunc("GET /metrics", publishThen(inner))
	mux.HandleFunc("GET /snapshot", publishThen(inner))
	mux.HandleFunc("GET /debug/vars", publishThen(inner))
	return mux
}

// submitRequest is the POST /v1/jobs body: a sim spec plus admission
// identity.
type submitRequest struct {
	Tenant string   `json:"tenant"`
	Spec   sim.Spec `json:"spec"`
}

// apiError is every non-2xx body.
type apiError struct {
	Error      string `json:"error"`
	RetryAfter int64  `json:"retryAfterSeconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// shed writes a backpressure response: status (429 or 503) with a
// Retry-After header, the admission contract clients program against.
func shed(w http.ResponseWriter, status int, retryAfter time.Duration, msg string) {
	secs := int64(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, status, apiError{Error: msg, RetryAfter: secs})
}

// handleSubmit is the admission path: drain check, per-tenant rate
// limit, spec validation, bounded enqueue — shedding, never stalling.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "undecodable request: " + err.Error()})
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	if s.Draining() {
		s.m.jobRejected(tenant, rejectDraining)
		shed(w, http.StatusServiceUnavailable, 5*time.Second, "draining for shutdown")
		return
	}
	if ok, retryAfter := s.limiter.Allow(tenant); !ok {
		s.m.jobRejected(tenant, rejectRate)
		shed(w, http.StatusTooManyRequests, retryAfter, "tenant rate limit exceeded")
		return
	}
	// Validate the spec at admission: a bad spec earns a 400 now, not a
	// dead-letter after three doomed attempts.
	if _, err := req.Spec.Unit(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	payload, err := json.Marshal(req.Spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	job, err := s.q.Enqueue(tenant, payload)
	if errors.Is(err, jobq.ErrQueueFull) {
		s.m.jobRejected(tenant, rejectFull)
		shed(w, http.StatusTooManyRequests, 2*time.Second, err.Error())
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	s.m.jobAdmitted(tenant)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Depth jobq.Depth `json:"depth"`
		Jobs  []jobq.Job `json:"jobs"`
	}{s.q.Depth(), s.q.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.q.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.Draining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, struct {
		Status string     `json:"status"`
		Depth  jobq.Depth `json:"depth"`
	}{state, s.q.Depth()})
}
