package zsimd

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/jobq"
	"bulkpreload/internal/sim"
)

// testSpec returns a spec body for one Table 4 profile at the given
// length.
func testSpec(instructions int) json.RawMessage {
	spec := sim.Spec{Trace: "tpf-airline", Instructions: instructions, Config: sim.ConfigBTB2}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shutdownNow(t *testing.T, s *Service) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestJobRunsToCompletionMatchingSerialRun is the baseline correctness
// gate: a job executed through queue + worker + context-polling loop
// produces a Result byte-identical (in its persisted JSON form) to the
// plain serial spec run.
func TestJobRunsToCompletionMatchingSerialRun(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CheckpointInterval: -1})
	job, err := s.Queue().Enqueue("acme", testSpec(300_000))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer shutdownNow(t, s)

	waitFor(t, 30*time.Second, "job completion", func() bool {
		j, _ := s.Queue().Get(job.ID)
		return j.State == jobq.StateDone
	})
	got, _ := s.Queue().Get(job.ID)

	var spec sim.Spec
	if err := json.Unmarshal(testSpec(300_000), &spec); err != nil {
		t.Fatal(err)
	}
	want, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got.Result), wantJSON) {
		t.Fatalf("service result diverges from serial run:\n got %s\nwant %s", got.Result, wantJSON)
	}
	if got.ResumedFrom != 0 {
		t.Fatalf("fresh job reports ResumedFrom=%d", got.ResumedFrom)
	}
	if v, err := s.m.counterValue("svc_jobs_done_total"); err != nil || v != 1 {
		t.Fatalf("svc_jobs_done_total = %d, %v; want 1", v, err)
	}
	if v, err := s.m.counterValue("svc_tenant_acme_done_total"); err != nil || v != 1 {
		t.Fatalf("svc_tenant_acme_done_total = %d, %v; want 1", v, err)
	}
}

// TestShutdownDrainCheckpointsAndNextIncarnationResumes is the
// graceful-SIGTERM satellite: a drain deadline cancels an in-flight
// job, which checkpoints its exact stopping boundary and is released
// (no attempt burned); a fresh service on the same directory resumes it
// from that checkpoint, and the final result is bit-identical to a
// serial checkpoint+resume oracle at the same boundary.
func TestShutdownDrainCheckpointsAndNextIncarnationResumes(t *testing.T) {
	dir := t.TempDir()
	// A long job with a tight checkpoint interval: the first interval
	// checkpoint lands almost immediately, then the 1ms drain deadline
	// cancels mid-trace.
	cfg := Config{Dir: dir, Workers: 1, CheckpointInterval: 100_000, DrainTimeout: time.Millisecond}
	s := newTestService(t, cfg)
	job, err := s.Queue().Enqueue("acme", testSpec(2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	waitFor(t, 30*time.Second, "first durable checkpoint", func() bool {
		j, _ := s.Queue().Get(job.ID)
		return j.State == jobq.StateRunning && j.CheckpointAt > 0
	})
	shutdownNow(t, s)

	released, _ := s.Queue().Get(job.ID)
	if released.State != jobq.StatePending {
		t.Fatalf("drained job state = %v, want pending (job done before drain? raise instructions)", released.State)
	}
	if released.CheckpointAt == 0 {
		t.Fatal("drained job has no checkpoint")
	}
	if released.Attempt != 1 {
		t.Fatalf("release burned an attempt: Attempt = %d, want 1", released.Attempt)
	}
	if v, err := s.m.counterValue("svc_jobs_released_total"); err != nil || v != 1 {
		t.Fatalf("svc_jobs_released_total = %d, %v; want 1", v, err)
	}

	// Second incarnation: resumes from the drain checkpoint.
	s2 := newTestService(t, cfg)
	ck, err := engine.ReadCheckpointFile(s2.Queue().CheckpointPath(job.ID))
	if err != nil {
		t.Fatalf("reading drain checkpoint: %v", err)
	}
	if ck.Instructions != released.CheckpointAt {
		t.Fatalf("checkpoint file at %d instructions, journal says %d", ck.Instructions, released.CheckpointAt)
	}
	s2.Start()
	waitFor(t, 60*time.Second, "resumed completion", func() bool {
		j, _ := s2.Queue().Get(job.ID)
		return j.State == jobq.StateDone
	})
	got, _ := s2.Queue().Get(job.ID)
	if got.ResumedFrom != ck.Instructions {
		t.Fatalf("ResumedFrom = %d, want %d", got.ResumedFrom, ck.Instructions)
	}
	if v, err := s2.m.counterValue("svc_resumes_total"); err != nil || v != 1 {
		t.Fatalf("svc_resumes_total = %d, %v; want 1", v, err)
	}
	shutdownNow(t, s2)

	// Serial oracle: same spec, same checkpoint, plain ResumeContext on
	// a fresh engine — the recovered service result must match it
	// byte-for-byte in persisted form.
	var spec sim.Spec
	if err := json.Unmarshal(testSpec(2_000_000), &spec); err != nil {
		t.Fatal(err)
	}
	unit, err := spec.Unit()
	if err != nil {
		t.Fatal(err)
	}
	params := unit.Params
	params.CheckpointInterval = cfg.CheckpointInterval
	params.CheckpointSink = func(*engine.Checkpoint) {}
	oracle := engine.New(unit.Config, params)
	want, err := oracle.ResumeContext(context.Background(), unit.NewSource(), ck, engine.DefaultCancelPoll)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got.Result), wantJSON) {
		t.Fatalf("resumed result diverges from serial checkpoint+resume oracle:\n got %s\nwant %s", got.Result, wantJSON)
	}
}

// TestJobDeadlineDeadLetters: an attempt that overruns JobDeadline
// counts as a failure; after MaxAttempts the job dead-letters instead
// of looping forever. Each doomed attempt still checkpoints, so the
// retries ratchet forward rather than restarting.
func TestJobDeadlineDeadLetters(t *testing.T) {
	s := newTestService(t, Config{
		Workers:            1,
		MaxAttempts:        2,
		JobDeadline:        15 * time.Millisecond,
		CheckpointInterval: 10_000,
		Retry:              jobq.Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Factor: 2},
	})
	defer shutdownNow(t, s)
	// Far more instructions than 15ms can simulate.
	job, err := s.Queue().Enqueue("acme", testSpec(200_000_000))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	waitFor(t, 30*time.Second, "dead-letter", func() bool {
		j, _ := s.Queue().Get(job.ID)
		return j.State == jobq.StateDead
	})
	got, _ := s.Queue().Get(job.ID)
	if got.Attempt != 2 {
		t.Fatalf("dead job Attempt = %d, want 2", got.Attempt)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Fatalf("dead job error %q does not mention the deadline", got.Error)
	}
	if got.CheckpointAt == 0 {
		t.Fatal("timed-out attempts left no checkpoint (ratchet broken)")
	}
	if v, err := s.m.counterValue("svc_jobs_dead_total"); err != nil || v != 1 {
		t.Fatalf("svc_jobs_dead_total = %d, %v; want 1", v, err)
	}
	if v, err := s.m.counterValue("svc_jobs_retried_total"); err != nil || v != 1 {
		t.Fatalf("svc_jobs_retried_total = %d, %v; want 1", v, err)
	}
}

// TestPoisonJobIsolated: a job whose payload never was a valid spec
// fails fast on every attempt, dead-letters, and leaves the queue fully
// serviceable for the jobs behind it.
func TestPoisonJobIsolated(t *testing.T) {
	s := newTestService(t, Config{
		Workers:            1,
		MaxAttempts:        3,
		CheckpointInterval: -1,
		Retry:              jobq.Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Factor: 2},
	})
	defer shutdownNow(t, s)
	poison, err := s.Queue().Enqueue("acme", json.RawMessage(`{"config":"btb2"}`)) // no workload at all
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Queue().Enqueue("acme", testSpec(200_000))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	waitFor(t, 30*time.Second, "poison dead-letter and good completion", func() bool {
		p, _ := s.Queue().Get(poison.ID)
		g, _ := s.Queue().Get(good.ID)
		return p.State == jobq.StateDead && g.State == jobq.StateDone
	})
	p, _ := s.Queue().Get(poison.ID)
	if p.Attempt != 3 {
		t.Fatalf("poison job Attempt = %d, want 3", p.Attempt)
	}
	if !strings.Contains(p.Error, "spec") {
		t.Fatalf("poison job error %q does not mention the spec", p.Error)
	}
}
