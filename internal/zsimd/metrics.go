package zsimd

import (
	"fmt"
	"strings"
	"sync"

	"bulkpreload/internal/jobq"
	"bulkpreload/internal/obs"
)

// metrics is the service-level observability surface, published through
// the same obs registry/Live machinery the engine uses. The obs layer
// is deliberately goroutine-local (see internal/obs), so here — where
// HTTP handlers and workers all report — every mutation and every
// Snapshot goes through one mutex. Service metrics are scrape-rate, not
// hot-path: the lock costs nothing that matters.
type metrics struct {
	mu  sync.Mutex
	reg *obs.Registry
	// seq numbers registry snapshots.
	//
	//zbp:guardedby mu
	seq int64

	admitted      obs.Counter
	rejectedFull  obs.Counter
	rejectedRate  obs.Counter
	rejectedDrain obs.Counter

	done       obs.Counter
	retried    obs.Counter
	dead       obs.Counter
	released   obs.Counter
	recovered  obs.Counter
	resumes    obs.Counter
	checkpoint obs.Counter
	damage     obs.Counter

	inflight     obs.Gauge
	instructions obs.Counter
	latency      obs.Histogram // job wall latency, milliseconds

	// tenants lazily materializes one counter set per tenant.
	//
	//zbp:guardedby mu
	tenants map[string]*tenantMetrics
}

// tenantMetrics is one tenant's lazily-created counter set.
type tenantMetrics struct {
	admitted obs.Counter
	rejected obs.Counter // admission rejects, any reason
	done     obs.Counter
	retried  obs.Counter
	dead     obs.Counter
}

func newMetrics(q *jobq.Queue) *metrics {
	m := &metrics{reg: obs.NewRegistry(), tenants: make(map[string]*tenantMetrics)}
	r := m.reg
	r.Counter("svc_jobs_admitted_total", "jobs", "jobs accepted into the queue", &m.admitted)
	r.Counter("svc_admission_rejected_full_total", "jobs", "submissions shed: pending backlog at bound", &m.rejectedFull)
	r.Counter("svc_admission_rejected_rate_total", "jobs", "submissions shed: tenant token bucket empty", &m.rejectedRate)
	r.Counter("svc_admission_rejected_draining_total", "jobs", "submissions refused during shutdown drain", &m.rejectedDrain)
	r.Counter("svc_jobs_done_total", "jobs", "jobs completed successfully", &m.done)
	r.Counter("svc_jobs_retried_total", "attempts", "failed attempts sent back with backoff", &m.retried)
	r.Counter("svc_jobs_dead_total", "jobs", "jobs dead-lettered after max attempts", &m.dead)
	r.Counter("svc_jobs_released_total", "jobs", "in-flight jobs checkpointed and released by drain", &m.released)
	r.Counter("svc_jobs_recovered_total", "jobs", "jobs requeued by crash recovery at startup", &m.recovered)
	r.Counter("svc_resumes_total", "jobs", "attempts that resumed from a durable checkpoint", &m.resumes)
	r.Counter("svc_checkpoints_total", "events", "durable job checkpoints written", &m.checkpoint)
	r.Counter("svc_journal_damage_total", "events", "startups that salvaged a damaged journal", &m.damage)
	r.Gauge("svc_jobs_inflight", "jobs", "jobs currently executing on workers", &m.inflight)
	r.Counter("svc_instructions_total", "instructions", "instructions simulated across completed jobs", &m.instructions)
	m.latency.SetBounds(10, 50, 100, 500, 1_000, 5_000, 30_000, 120_000)
	r.Histogram("svc_job_latency_ms", "milliseconds", "completed-job wall latency", &m.latency)
	r.GaugeFunc("svc_queue_pending", "jobs", "jobs waiting for a worker", func() int64 {
		return int64(q.Depth().Pending)
	})
	r.GaugeFunc("svc_queue_running", "jobs", "jobs marked running in the journal", func() int64 {
		return int64(q.Depth().Running)
	})
	r.GaugeFunc("svc_queue_dead", "jobs", "dead-lettered jobs held for inspection", func() int64 {
		return int64(q.Depth().Dead)
	})
	return m
}

// tenant returns (creating on first use) the tenant's counter set.
//
//zbp:caller-holds mu
func (m *metrics) tenant(name string) *tenantMetrics {
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantMetrics{}
		m.tenants[name] = t
		p := "svc_tenant_" + sanitizeTenant(name) + "_"
		m.reg.Counter(p+"admitted_total", "jobs", "jobs admitted for tenant "+name, &t.admitted)
		m.reg.Counter(p+"rejected_total", "jobs", "submissions shed for tenant "+name, &t.rejected)
		m.reg.Counter(p+"done_total", "jobs", "jobs completed for tenant "+name, &t.done)
		m.reg.Counter(p+"retried_total", "attempts", "attempts retried for tenant "+name, &t.retried)
		m.reg.Counter(p+"dead_total", "jobs", "jobs dead-lettered for tenant "+name, &t.dead)
	}
	return t
}

// sanitizeTenant maps an arbitrary tenant string into the metric-name
// alphabet; distinct tenants that sanitize alike share a counter set
// suffixed by nothing cleverer than their sanitized form (acceptable:
// tenant names are operator-chosen).
func sanitizeTenant(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "anon"
	}
	return b.String()
}

func (m *metrics) jobAdmitted(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admitted.Inc()
	m.tenant(tenant).admitted.Inc()
}

// reject reasons for jobRejected.
const (
	rejectFull     = "full"
	rejectRate     = "rate"
	rejectDraining = "draining"
)

func (m *metrics) jobRejected(tenant, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch reason {
	case rejectFull:
		m.rejectedFull.Inc()
	case rejectRate:
		m.rejectedRate.Inc()
	case rejectDraining:
		m.rejectedDrain.Inc()
	}
	m.tenant(tenant).rejected.Inc()
}

func (m *metrics) jobDone(tenant string, instructions, latencyMillis int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done.Inc()
	m.instructions.Add(instructions)
	m.latency.Observe(latencyMillis)
	m.tenant(tenant).done.Inc()
}

func (m *metrics) jobRetried(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retried.Inc()
	m.tenant(tenant).retried.Inc()
}

func (m *metrics) jobDead(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dead.Inc()
	m.tenant(tenant).dead.Inc()
}

func (m *metrics) jobReleased() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.released.Inc()
}

func (m *metrics) jobsRecovered(n int, damaged bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recovered.Add(int64(n))
	if damaged {
		m.damage.Inc()
	}
}

func (m *metrics) checkpointWritten() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checkpoint.Inc()
}

func (m *metrics) resumed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resumes.Inc()
}

func (m *metrics) inflightDelta(d int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight.Add(d)
}

// snapshot captures the registry under the lock (GaugeFunc closures
// read the queue, which takes its own lock — ordering is always
// metrics.mu then queue.mu, matching every other call site).
func (m *metrics) snapshot() obs.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	return m.reg.Snapshot(m.seq)
}

// counterValue reads one counter by name (test hook).
func (m *metrics) counterValue(name string) (int64, error) {
	s := m.snapshot()
	for _, v := range s.Values {
		if v.Name == name {
			return v.Value, nil
		}
	}
	return 0, fmt.Errorf("zsimd: no metric %q", name)
}
