package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// TestInvariantsUnderRandomOperations drives random surprise installs,
// predictions, miss reports, transfers and preloads and checks the
// first-level uniqueness invariant after every batch.
func TestInvariantsUnderRandomOperations(t *testing.T) {
	run := func(seed int64, policy Policy) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		cfg.Policy = policy
		h := New(cfg)
		now := uint64(0)
		for step := 0; step < 400; step++ {
			now += uint64(r.Intn(20))
			a := zaddr.Addr(0x1000 + r.Intn(256)*64)
			switch r.Intn(6) {
			case 0, 1:
				in := takenBranch(a, a+0x80)
				if p, ok := h.Predict(a, now); ok {
					h.Resolve(in, &p, now)
				} else {
					h.Resolve(in, nil, now)
				}
			case 2:
				h.Predict(a, now)
			case 3:
				h.ReportBTB1Miss(a, now)
			case 4:
				h.ReportICacheMiss(a, now)
			case 5:
				h.PreloadBranch(a, a+0x100, 4, now)
			}
			if step%25 == 0 {
				h.Advance(now + 500)
				if err := h.CheckInvariants(); err != nil {
					t.Logf("seed %d policy %v step %d: %v", seed, policy, step, err)
					return false
				}
			}
		}
		h.Advance(now + 100000)
		return h.CheckInvariants() == nil
	}
	f := func(seed int64) bool {
		return run(seed, SemiExclusive) && run(seed, Inclusive) && run(seed, TrueExclusive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestTrueExclusiveInvariant: under the true-exclusive policy, nothing
// may be resident in both the first level and the BTB2 after transfers.
func TestTrueExclusiveInvariant(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = TrueExclusive
	h := New(cfg)
	// Install, evict to BTB2-only, then transfer back.
	br := takenBranch(0x40010, 0x40100)
	h.Resolve(br, nil, 0)
	h.Advance(100)
	h.ReportBTB1Miss(br.Addr, 1000)
	h.ReportICacheMiss(br.Addr, 1000)
	h.Advance(1400)
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestInvariantViolationDetected: the checker is not a rubber stamp — a
// hand-constructed duplicate is caught.
func TestInvariantViolationDetected(t *testing.T) {
	h := New(testConfig())
	e := takenBranch(0x5000, 0x6000)
	// Force a duplicate by installing directly into both tables through
	// the internal fields (test-only white-box access).
	h.btb1.Insert(entryOf(e))
	h.btbp.Insert(entryOf(e))
	if err := h.CheckInvariants(); err == nil {
		t.Fatal("duplicate across BTB1/BTBP not detected")
	}
}

// entryOf builds a btb.Entry from a taken-branch instruction.
func entryOf(in trace.Inst) btb.Entry {
	return btb.Entry{Valid: true, Addr: in.Addr, Target: in.Target, Length: in.Length}
}
