package core

import (
	"fmt"

	"bulkpreload/internal/zaddr"
)

// EventKind labels one hierarchy event for tracing.
type EventKind uint8

// Hierarchy event kinds, in rough lifecycle order.
const (
	// EvPredict: a dynamic prediction was made (Addr = branch, Aux =
	// target when taken).
	EvPredict EventKind = iota
	// EvPromotion: a BTBP entry moved into the BTB1 (Addr = branch).
	EvPromotion
	// EvVictim: a BTB1 victim cascaded to the BTBP/BTB2 (Addr = victim).
	EvVictim
	// EvSurpriseInstall: a surprise branch queued a BTBP install (Addr =
	// branch, Aux = target).
	EvSurpriseInstall
	// EvPreloadInstall: a branch preload instruction queued an install.
	EvPreloadInstall
	// EvMissReport: a BTB1 miss was reported to the trackers (Addr =
	// anchor address).
	EvMissReport
	// EvICacheReport: an L1I miss was reported to the trackers.
	EvICacheReport
	// EvTransferHit: a BTB2 entry was bulk-moved into the BTBP (Addr =
	// branch, Aux = target).
	EvTransferHit
	// EvChase: a multi-block secondary search launched (Addr = block
	// base).
	EvChase

	numEventKinds
)

// NumEventKinds is the number of distinct event kinds.
const NumEventKinds = int(numEventKinds)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPredict:
		return "predict"
	case EvPromotion:
		return "promote"
	case EvVictim:
		return "victim"
	case EvSurpriseInstall:
		return "surprise-install"
	case EvPreloadInstall:
		return "preload-install"
	case EvMissReport:
		return "btb1-miss"
	case EvICacheReport:
		return "icache-miss"
	case EvTransferHit:
		return "transfer-hit"
	case EvChase:
		return "chase"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// MetricName returns the name of the registry counter that counts this
// event kind (see Hierarchy.RegisterMetrics): every emitted event
// increments its counter exactly once, so exported trace files can be
// reconciled against the final registry snapshot kind by kind. Unknown
// kinds return "".
func (k EventKind) MetricName() string {
	switch k {
	case EvPredict:
		return "hier_predictions_total"
	case EvPromotion:
		return "hier_promotions_total"
	case EvVictim:
		return "hier_btb1_victims_total"
	case EvSurpriseInstall:
		return "hier_surprise_installs_total"
	case EvPreloadInstall:
		return "hier_preload_installs_total"
	case EvMissReport:
		return "hier_miss_reports_total"
	case EvICacheReport:
		return "hier_icache_reports_total"
	case EvTransferHit:
		return "hier_transferred_hits_total"
	case EvChase:
		return "hier_chained_searches_total"
	default:
		return ""
	}
}

// Event is one traced hierarchy action.
type Event struct {
	Cycle uint64
	Kind  EventKind
	Addr  zaddr.Addr
	Aux   zaddr.Addr
}

// String renders the event for logs.
func (e Event) String() string {
	if e.Aux != 0 {
		return fmt.Sprintf("[%8d] %-16s %#x -> %#x", e.Cycle, e.Kind, uint64(e.Addr), uint64(e.Aux))
	}
	return fmt.Sprintf("[%8d] %-16s %#x", e.Cycle, e.Kind, uint64(e.Addr))
}

// Tracer receives hierarchy events. Implementations must be fast; the
// hierarchy calls them inline.
type Tracer interface {
	Event(Event)
}

// SetTracer installs (or, with nil, removes) an event tracer.
func (h *Hierarchy) SetTracer(t Tracer) { h.tracer = t }

// emit sends an event to the tracer if one is installed.
func (h *Hierarchy) emit(cycle uint64, kind EventKind, addr, aux zaddr.Addr) {
	if h.tracer != nil {
		h.tracer.Event(Event{Cycle: cycle, Kind: kind, Addr: addr, Aux: aux})
	}
}

// CollectTracer is a Tracer that buffers events up to a cap — the
// simplest way to inspect hierarchy behaviour in tests and tools. By
// default the first Max events are kept and later ones dropped; with
// Ring set, the buffer instead keeps the *last* Max events, so a
// timeline taken at the end of a long run shows the steady state rather
// than the warm-up.
type CollectTracer struct {
	Max    int  // 0 = unlimited
	Ring   bool // keep the last Max events instead of the first
	Events []Event

	head    int  // ring mode: index of the oldest event
	wrapped bool // ring mode: buffer has overwritten at least once
}

// Event implements Tracer.
func (c *CollectTracer) Event(e Event) {
	if c.Max > 0 && len(c.Events) >= c.Max {
		if !c.Ring {
			return
		}
		c.Events[c.head] = e
		c.head = (c.head + 1) % c.Max
		c.wrapped = true
		return
	}
	c.Events = append(c.Events, e)
}

// Ordered returns the collected events in arrival order. In ring mode
// after a wrap, Events itself is rotated; Ordered straightens it out
// (allocating a copy). Otherwise it returns Events as-is.
func (c *CollectTracer) Ordered() []Event {
	if !c.wrapped {
		return c.Events
	}
	out := make([]Event, 0, len(c.Events))
	out = append(out, c.Events[c.head:]...)
	out = append(out, c.Events[:c.head]...)
	return out
}

// Count returns how many events of the given kind were collected.
func (c *CollectTracer) Count(kind EventKind) int {
	n := 0
	for _, e := range c.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TeeTracer fans each event out to every member tracer, letting a run
// stream a JSONL export and feed a timeline buffer at the same time.
type TeeTracer []Tracer

// Event implements Tracer.
func (t TeeTracer) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}
