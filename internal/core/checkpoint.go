package core

import (
	"fmt"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/btb"
	"bulkpreload/internal/ctb"
	"bulkpreload/internal/history"
	"bulkpreload/internal/pht"
)

// PendingInstall is the serializable mirror of one queued surprise
// install (visibility cycle + the entry awaiting its BTBP write).
type PendingInstall struct {
	At    uint64
	Entry btb.Entry
}

// State is a serializable copy of the hierarchy's architectural state:
// the contents of every predictor array plus the global path history and
// the queued surprise installs. Transient microarchitectural machinery —
// search trackers, steering, the FIT, miss-detector state, activity
// counters, and the fault-injector schedules — is deliberately excluded:
// a hierarchy restored from State behaves like one whose transfer engine
// was just flushed, which costs at most a few warm-up searches. See
// docs/ROBUSTNESS.md for the fidelity discussion.
type State struct {
	BTB1 btb.State
	BTBP btb.State
	BTB2 *btb.State // nil when the BTB2 is disabled

	PHT  *pht.State // nil when disabled
	CTB  *ctb.State // nil when disabled
	SBHT *bht.State // nil when disabled

	History history.State
	Pending []PendingInstall
}

// State captures the hierarchy's architectural state.
func (h *Hierarchy) State() State {
	s := State{
		BTB1:    h.btb1.State(),
		BTBP:    h.btbp.State(),
		History: h.hist.State(),
	}
	if h.btb2 != nil {
		st := h.btb2.State()
		s.BTB2 = &st
	}
	if h.pht != nil {
		st := h.pht.State()
		s.PHT = &st
	}
	if h.ctb != nil {
		st := h.ctb.State()
		s.CTB = &st
	}
	if h.sbht != nil {
		st := h.sbht.State()
		s.SBHT = &st
	}
	s.Pending = make([]PendingInstall, len(h.pendingSurprise))
	for i, p := range h.pendingSurprise {
		s.Pending[i] = PendingInstall{At: p.at, Entry: p.entry}
	}
	return s
}

// RestoreState overwrites the hierarchy's architectural state with s.
// The hierarchy must have been built from the same configuration the
// state was captured under; geometry mismatches are reported as errors.
// Transient machinery (trackers, steering, FIT, counters) is reset cold.
func (h *Hierarchy) RestoreState(s State) error {
	if err := h.btb1.RestoreState(s.BTB1); err != nil {
		return err
	}
	if err := h.btbp.RestoreState(s.BTBP); err != nil {
		return err
	}
	if (s.BTB2 != nil) != (h.btb2 != nil) {
		return fmt.Errorf("core: checkpoint BTB2 presence (%t) does not match configuration (%t)",
			s.BTB2 != nil, h.btb2 != nil)
	}
	if s.BTB2 != nil {
		if err := h.btb2.RestoreState(*s.BTB2); err != nil {
			return err
		}
	}
	if (s.PHT != nil) != (h.pht != nil) {
		return fmt.Errorf("core: checkpoint PHT presence (%t) does not match configuration (%t)",
			s.PHT != nil, h.pht != nil)
	}
	if s.PHT != nil {
		if err := h.pht.RestoreState(*s.PHT); err != nil {
			return err
		}
	}
	if (s.CTB != nil) != (h.ctb != nil) {
		return fmt.Errorf("core: checkpoint CTB presence (%t) does not match configuration (%t)",
			s.CTB != nil, h.ctb != nil)
	}
	if s.CTB != nil {
		if err := h.ctb.RestoreState(*s.CTB); err != nil {
			return err
		}
	}
	if (s.SBHT != nil) != (h.sbht != nil) {
		return fmt.Errorf("core: checkpoint surprise BHT presence (%t) does not match configuration (%t)",
			s.SBHT != nil, h.sbht != nil)
	}
	if s.SBHT != nil {
		if err := h.sbht.RestoreState(*s.SBHT); err != nil {
			return err
		}
	}
	h.hist.RestoreState(s.History)
	h.pendingSurprise = h.pendingSurprise[:0]
	for _, p := range s.Pending {
		h.pendingSurprise = append(h.pendingSurprise, pendingInstall{at: p.At, entry: p.Entry})
	}
	return nil
}
