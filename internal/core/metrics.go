package core

import (
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// Detail-metric map capacity bounds. The derived latency metrics
// (promotion age, miss-to-install) need per-address bookkeeping; these
// caps keep that bookkeeping from growing without bound on pathological
// traces. When a map is full, new samples are simply not tracked — the
// histograms under-count rather than the simulator over-allocating.
const (
	maxInstalledAt = 1 << 15
	maxMissAt      = 4096
)

// hierCounters is the hierarchy's registry-backed counter set. It is a
// separate struct from hierMetrics so Reset can zero all counters with
// one assignment without disturbing the histograms' bucket bounds.
type hierCounters struct {
	predictions      obs.Counter
	btb1Hits         obs.Counter
	btbpHits         obs.Counter
	promotions       obs.Counter
	btb1Victims      obs.Counter
	surpriseInstalls obs.Counter
	preloadInstalls  obs.Counter
	phtOverrides     obs.Counter
	ctbOverrides     obs.Counter
	transferredHits  obs.Counter
	transferReads    obs.Counter
	btb2Writes       obs.Counter
	chainedSearches  obs.Counter
	missReports      obs.Counter
	icacheReports    obs.Counter
}

// hierMetrics is the hierarchy's full metric state: counters plus the
// distribution metrics of Section 5's behavioural questions — how long
// entries sit in the BTBP before promotion, how many entries one BTB2
// row read delivers, and how long a miss waits for its bulk transfer.
type hierMetrics struct {
	counters hierCounters

	promotionAge  obs.Histogram // cycles from BTBP install to promotion
	transferBurst obs.Histogram // entries delivered per BTB2 row read
	missToInstall obs.Histogram // cycles from miss report to first transfer install
}

// setBounds fixes the histogram buckets; called once at construction.
func (m *hierMetrics) setBounds() {
	m.promotionAge.SetBounds(16, 64, 256, 1024, 4096, 16384)
	m.transferBurst.SetBounds(0, 1, 2, 3, 4, 6)
	m.missToInstall.SetBounds(8, 16, 32, 64, 128, 256, 1024)
}

// RegisterMetrics enumerates every hierarchy metric into r: the
// hierarchy's own counters and histograms under "hier_", and each
// constituent structure under its own prefix ("btb1_", "btbp_",
// "btb2_", "pht_", "ctb_", "fit_", "sbht_", "steering_", "tracker_").
// Disabled structures register nothing.
func (h *Hierarchy) RegisterMetrics(r *obs.Registry) {
	c := &h.met.counters
	r.Counter("hier_predictions_total", "predictions", "dynamic predictions made", &c.predictions)
	r.Counter("hier_btb1_hits_total", "predictions", "predictions served by the BTB1", &c.btb1Hits)
	r.Counter("hier_btbp_hits_total", "predictions", "predictions served by the BTBP", &c.btbpHits)
	r.Counter("hier_promotions_total", "entries", "BTBP entries moved into the BTB1", &c.promotions)
	r.Counter("hier_btb1_victims_total", "entries", "BTB1 victims displaced by promotions", &c.btb1Victims)
	r.Counter("hier_surprise_installs_total", "entries", "surprise-branch installs queued", &c.surpriseInstalls)
	r.Counter("hier_preload_installs_total", "entries", "branch-preload-instruction installs queued", &c.preloadInstalls)
	r.Counter("hier_pht_overrides_total", "predictions", "directions supplied by the PHT", &c.phtOverrides)
	r.Counter("hier_ctb_overrides_total", "predictions", "targets supplied by the CTB", &c.ctbOverrides)
	r.Counter("hier_transferred_hits_total", "entries", "BTB2 entries bulk-moved into the BTBP", &c.transferredHits)
	r.Counter("hier_transfer_reads_total", "rows", "BTB2 row reads performed", &c.transferReads)
	r.Counter("hier_btb2_writes_total", "entries", "entries written into the BTB2", &c.btb2Writes)
	r.Counter("hier_chained_searches_total", "searches", "secondary multi-block searches launched", &c.chainedSearches)
	r.Counter("hier_miss_reports_total", "events", "BTB1 misses reported to the trackers", &c.missReports)
	r.Counter("hier_icache_reports_total", "events", "L1I misses reported to the trackers", &c.icacheReports)
	r.Histogram("hier_promotion_age_cycles", "cycles", "BTBP residency at promotion (detail mode)", &h.met.promotionAge)
	r.Histogram("hier_transfer_burst_entries", "entries", "entries delivered per BTB2 row read", &h.met.transferBurst)
	r.Histogram("hier_miss_to_install_cycles", "cycles", "miss report to first bulk install (detail mode)", &h.met.missToInstall)
	r.GaugeFunc("hier_pending_surprise_installs", "entries", "queued installs not yet visible to the search pipeline",
		func() int64 { return int64(len(h.pendingSurprise)) })

	h.btb1.RegisterMetrics(r, "btb1_")
	h.btbp.RegisterMetrics(r, "btbp_")
	if h.btb2 != nil {
		h.btb2.RegisterMetrics(r, "btb2_")
	}
	if h.pht != nil {
		h.pht.RegisterMetrics(r, "pht_")
	}
	if h.ctb != nil {
		h.ctb.RegisterMetrics(r, "ctb_")
	}
	if h.fit != nil {
		h.fit.RegisterMetrics(r, "fit_")
	}
	if h.sbht != nil {
		h.sbht.RegisterMetrics(r, "sbht_")
	}
	if h.steer != nil {
		h.steer.RegisterMetrics(r, "steering_")
	}
	if h.trk != nil {
		h.trk.RegisterMetrics(r, "tracker_")
	}
	h.registerFaultMetrics(r)
}

// EnableDetailMetrics turns on the derived latency histograms (promotion
// age, miss-to-install), which need per-address timestamp maps. The maps
// are preallocated here so the predict/install hot path stays
// allocation-free; with detail mode off those paths never touch a map.
func (h *Hierarchy) EnableDetailMetrics() {
	h.detail = true
	if h.installedAt == nil {
		h.installedAt = make(map[zaddr.Addr]uint64, maxInstalledAt)
		h.missAt = make(map[uint64]uint64, maxMissAt)
	}
}

// noteInstall records when a BTBP install became visible (detail mode).
func (h *Hierarchy) noteInstall(a zaddr.Addr, now uint64) {
	if !h.detail || len(h.installedAt) >= maxInstalledAt {
		return
	}
	h.installedAt[a] = now
}

// notePromotion observes the BTBP residency of a just-promoted entry.
func (h *Hierarchy) notePromotion(a zaddr.Addr, now uint64) {
	if !h.detail {
		return
	}
	if t, ok := h.installedAt[a]; ok {
		h.met.promotionAge.Observe(int64(now - t))
		delete(h.installedAt, a)
	}
}

// noteMissReport records the first outstanding miss report for a block.
func (h *Hierarchy) noteMissReport(a zaddr.Addr, now uint64) {
	if !h.detail || len(h.missAt) >= maxMissAt {
		return
	}
	blk := zaddr.Block(a)
	if _, ok := h.missAt[blk]; !ok {
		h.missAt[blk] = now
	}
}

// noteTransferInstall observes miss-to-install latency when a bulk
// transfer first delivers an entry into a block with an outstanding miss.
func (h *Hierarchy) noteTransferInstall(a zaddr.Addr, now uint64) {
	if !h.detail {
		return
	}
	blk := zaddr.Block(a)
	if t, ok := h.missAt[blk]; ok {
		h.met.missToInstall.Observe(int64(now - t))
		delete(h.missAt, blk)
	}
}
