package core

import (
	"fmt"

	"bulkpreload/internal/zaddr"
)

// CheckInvariants validates the structural invariants the hierarchy's
// content-movement policy is supposed to maintain. It is O(capacity) and
// intended for tests and debugging, not steady-state use.
//
// Invariants checked:
//
//  1. No branch is resident in both the BTB1 and the BTBP: installs drop
//     duplicates, and promotion moves (not copies) entries.
//  2. Under the TrueExclusive policy, no branch is resident in both the
//     first level and the BTB2.
//  3. Every valid entry's address maps to the row it is stored in (no
//     corrupted placements).
func (h *Hierarchy) CheckInvariants() error {
	btb1 := residencySet(h.btb1.Entries())
	btbp := residencySet(h.btbp.Entries())
	// Iterate the slice, not the set: on a multi-way violation the
	// reported address is then the first in table order, not whichever
	// key Go's randomized map iteration happened to yield.
	for _, a := range h.btb1.Entries() {
		if btbp[a] {
			return fmt.Errorf("core: branch %#x resident in both BTB1 and BTBP", uint64(a))
		}
	}
	if h.cfg.Policy == TrueExclusive && h.btb2 != nil {
		// Even the paper's truly-exclusive sketch tolerates transient
		// BTBP/BTB2 overlap (exclusivity is enforced when entries move);
		// the hard invariant is BTB1 vs BTB2.
		for _, e := range h.btb2.Entries() {
			if btb1[e] {
				return fmt.Errorf("core: true-exclusive violated: %#x in BTB1 and BTB2", uint64(e))
			}
		}
	}
	if err := h.btb1.CheckPlacement(); err != nil {
		return err
	}
	if err := h.btbp.CheckPlacement(); err != nil {
		return err
	}
	if h.btb2 != nil {
		if err := h.btb2.CheckPlacement(); err != nil {
			return err
		}
	}
	return nil
}

func residencySet(addrs []zaddr.Addr) map[zaddr.Addr]bool {
	m := make(map[zaddr.Addr]bool, len(addrs))
	for _, a := range addrs {
		m[a] = true
	}
	return m
}
