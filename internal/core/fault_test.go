package core

import (
	"math/rand"
	"reflect"
	"testing"

	"bulkpreload/internal/fault"
	"bulkpreload/internal/zaddr"
)

// faultConfig returns the small test hierarchy with aggressive injection
// rates so a short run sees many strikes.
func faultConfig(p fault.Protection) Config {
	c := testConfig()
	c.Fault = fault.ZEC12Rates(1234, 20_000, p) // 2% of reads
	return c
}

// driveFaulted exercises the hierarchy under a randomized branch
// workload: installs, predictions, and resolutions over a footprint
// large enough to keep every structure busy.
func driveFaulted(t *testing.T, h *Hierarchy, steps int) {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	now := uint64(0)
	addrs := make([]zaddr.Addr, 200)
	for i := range addrs {
		addrs[i] = zaddr.Addr(0x1000 + 64*uint64(i))
	}
	for s := 0; s < steps; s++ {
		now += uint64(1 + r.Intn(8))
		a := addrs[r.Intn(len(addrs))]
		in := takenBranch(a, a+0x4000)
		if r.Intn(4) == 0 {
			in.Taken = false
		}
		if p, ok := h.Predict(a, now); ok {
			h.Resolve(in, &p, now)
		} else {
			h.Resolve(in, nil, now)
		}
		if s%50 == 0 {
			h.Advance(now + h.cfg.SurpriseInstallDelay)
		}
	}
}

// TestUnprotectedFaultsPreserveInvariants is the key structural claim of
// the fault model: silent corruption changes predictions, never the
// hierarchy's residency/placement invariants, because injected flips are
// confined to the entry payload (target, direction, length, valid bit)
// and never touch the indexed address.
func TestUnprotectedFaultsPreserveInvariants(t *testing.T) {
	h := New(faultConfig(fault.Unprotected))
	for round := 0; round < 20; round++ {
		driveFaulted(t, h, 500)
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("round %d: invariants violated under silent corruption: %v", round, err)
		}
	}
	s := h.FaultStats()
	if s.Injected == 0 {
		t.Fatal("workload drew no fault strikes; rates too low for the test to mean anything")
	}
	if s.Detected != 0 || s.Recovered != 0 {
		t.Errorf("unprotected run detected/recovered faults: %+v", s)
	}
	if s.Silent != s.Injected {
		t.Errorf("silent %d != injected %d in unprotected mode", s.Silent, s.Injected)
	}
}

// TestParityRecoveryRestoresCleanState checks the acceptance criterion
// "recoveries == detections" and that recovery-by-invalidation leaves a
// hierarchy that still satisfies every structural invariant.
func TestParityRecoveryRestoresCleanState(t *testing.T) {
	h := New(faultConfig(fault.Parity))
	for round := 0; round < 20; round++ {
		driveFaulted(t, h, 500)
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("round %d: invariants violated after parity recovery: %v", round, err)
		}
	}
	s := h.FaultStats()
	if s.Injected == 0 {
		t.Fatal("workload drew no fault strikes")
	}
	if s.Recovered != s.Detected {
		t.Errorf("recovered %d != detected %d", s.Recovered, s.Detected)
	}
	if s.Detected != s.Injected {
		t.Errorf("parity left %d of %d strikes undetected", s.Injected-s.Detected, s.Injected)
	}
	if s.Silent != 0 {
		t.Errorf("parity run recorded %d silent corruptions", s.Silent)
	}
	// Per-injector too, not just in aggregate.
	for _, j := range h.FaultInjectors() {
		js := j.Stats()
		if js.Recovered != js.Detected {
			t.Errorf("%s: recovered %d != detected %d", j.Name(), js.Recovered, js.Detected)
		}
	}
}

// TestFaultSitesDeterministic: same seed, same workload -> bit-for-bit
// identical strike sites, the reproducibility the degradation study
// depends on.
func TestFaultSitesDeterministic(t *testing.T) {
	run := func() map[string][]fault.Site {
		c := faultConfig(fault.Unprotected)
		c.Fault.RecordSites = true
		h := New(c)
		driveFaulted(t, h, 3000)
		return h.FaultSites()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no injectors attached")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical runs recorded different fault sites")
	}
	var total int
	for _, sites := range a {
		total += len(sites)
	}
	if total == 0 {
		t.Fatal("no strike sites recorded")
	}
}

// TestHierarchyResetReplaysFaults: Reset must rearm the injectors so a
// replayed workload sees the identical fault stream.
func TestHierarchyResetReplaysFaults(t *testing.T) {
	c := faultConfig(fault.Unprotected)
	c.Fault.RecordSites = true
	h := New(c)
	driveFaulted(t, h, 2000)
	first := map[string][]fault.Site{}
	for name, sites := range h.FaultSites() {
		first[name] = append([]fault.Site(nil), sites...)
	}
	h.Reset()
	if s := h.FaultStats(); s != (fault.Stats{}) {
		t.Fatalf("Reset left fault counters: %+v", s)
	}
	driveFaulted(t, h, 2000)
	if !reflect.DeepEqual(first, h.FaultSites()) {
		t.Error("post-Reset replay struck different sites")
	}
}

// TestFaultedPredictPathNoAllocs extends the PR 1 allocation pins to the
// fault hooks: with RecordSites off, Strike/parity-recovery must not
// allocate even while faults are landing on the hot path.
func TestFaultedPredictPathNoAllocs(t *testing.T) {
	h := New(faultConfig(fault.Parity)) // 2% of reads struck; RecordSites off
	a, tgt := zaddr.Addr(0x4000), zaddr.Addr(0x5000)
	in := takenBranch(a, tgt)
	installBranch(h, in, 0)
	now := uint64(100)
	step := func() {
		if p, ok := h.Predict(a, now); ok {
			h.Resolve(in, &p, now)
		} else {
			// A parity recovery invalidated the entry: re-train it through
			// the surprise path, exactly as a real run would.
			h.Resolve(in, nil, now)
			h.Advance(now + h.cfg.SurpriseInstallDelay)
		}
		now += 10
	}
	for i := 0; i < 64; i++ { // warm scratch buffers, with strikes landing
		step()
	}
	allocs := testing.AllocsPerRun(2000, step)
	if allocs != 0 {
		t.Errorf("faulted predict path allocates %.1f objects/op, want 0", allocs)
	}
	if h.FaultStats().Injected == 0 {
		t.Fatal("no strikes landed; the pin did not exercise the fault hooks")
	}
}

// TestNoFaultConfigAttachesNothing pins the disabled path: a zero fault
// config must leave every structure with a nil injector.
func TestNoFaultConfigAttachesNothing(t *testing.T) {
	h := New(testConfig())
	if js := h.FaultInjectors(); len(js) != 0 {
		t.Fatalf("disabled config attached %d injectors", len(js))
	}
	if s := h.FaultStats(); s != (fault.Stats{}) {
		t.Errorf("disabled config has fault stats: %+v", s)
	}
}
