// Package core implements the paper's primary contribution: the
// two-level bulk preload branch prediction hierarchy of the IBM zEC12
// (Section 3). It wires together the BTB1, the BTBP preload/filter/victim
// table, the BTB2 second level with its bulk-transfer machinery (search
// trackers + steering), the PHT/CTB/FIT auxiliary predictors and the
// surprise BHT, and implements the semi-exclusive content-movement policy
// of Section 3.3:
//
//   - all first-level writes land in the BTBP (surprise installs, BTB2
//     transfer hits, BTB1 victims);
//   - a BTBP entry is promoted into the BTB1 only when it makes a
//     prediction, and the displaced BTB1 victim moves to the BTBP and the
//     BTB2 (written into the BTB2's LRU way and made MRU);
//   - an entry copied from the BTB2 to the BTBP is made LRU in the BTB2 so
//     subsequent victims replace it, approximating exclusivity without
//     invalidation write traffic;
//   - the BTB2 never makes predictions directly.
package core

import (
	"fmt"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/btb"
	"bulkpreload/internal/ctb"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/fit"
	"bulkpreload/internal/pht"
	"bulkpreload/internal/predictor"
	"bulkpreload/internal/tracker"
)

// Policy selects the inter-level content-movement policy. SemiExclusive
// is the shipping design; the others exist for the ablation study of the
// trade-off discussed in Section 3.3.
type Policy uint8

const (
	// SemiExclusive: BTB2 hits are demoted to LRU (no invalidate write);
	// BTB1 victims overwrite the BTB2 LRU way and become MRU.
	SemiExclusive Policy = iota
	// TrueExclusive: BTB2 hits are invalidated on transfer, and surprise
	// installs skip the BTB2 when the branch is already in the BTB1 —
	// maximum unique capacity at maximum write cost.
	TrueExclusive
	// Inclusive: BTB2 hits stay MRU; victims update the BTB2 copy in
	// place; every install writes both levels.
	Inclusive
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SemiExclusive:
		return "semi-exclusive"
	case TrueExclusive:
		return "true-exclusive"
	case Inclusive:
		return "inclusive"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// MissMode selects how BTB1 misses are detected and reported to the
// BTB2 trackers (Section 3.4 describes the shipping speculative
// definition and sketches decode-time alternatives; Section 6 lists the
// early-speculative vs late-precise trade-off as future work).
type MissMode uint8

const (
	// MissSpeculative reports a miss after N consecutive predictionless
	// searches (N = Miss.SearchLimit) — early but speculative; the
	// shipping design.
	MissSpeculative MissMode = iota
	// MissDecodeSurprise reports a miss only when a surprise branch that
	// is statically guessed taken is actually encountered — late but
	// precise (no false misses; no I-cache filtering needed).
	MissDecodeSurprise
	// MissBoth combines the two.
	MissBoth
)

// String implements fmt.Stringer.
func (m MissMode) String() string {
	switch m {
	case MissSpeculative:
		return "speculative"
	case MissDecodeSurprise:
		return "decode-surprise"
	case MissBoth:
		return "both"
	default:
		return fmt.Sprintf("MissMode(%d)", uint8(m))
	}
}

// Speculative reports whether the mode includes the speculative
// empty-search detector.
func (m MissMode) Speculative() bool { return m == MissSpeculative || m == MissBoth }

// DecodeSurprise reports whether the mode includes decode-time surprise
// reporting.
func (m MissMode) DecodeSurprise() bool { return m == MissDecodeSurprise || m == MissBoth }

// Config assembles a full hierarchy configuration. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	BTB1 btb.Config
	BTBP btb.Config
	// BTB2 is ignored unless BTB2Enabled.
	BTB2        btb.Config
	BTB2Enabled bool

	// Auxiliary predictors. Entry counts of zero disable the structure.
	PHTEntries         int
	CTBEntries         int
	FITEntries         int
	SurpriseBHTEntries int

	// Tracker and steering parameters (BTB2 side).
	Tracker         tracker.Config
	SteeringEntries int
	SteeringWays    int
	// UseSteering false degrades full searches to sequential order.
	UseSteering bool

	// Miss detection (Section 3.4).
	Miss predictor.MissConfig
	// MissMode selects speculative vs decode-time miss reporting.
	MissMode MissMode

	// SurpriseInstallDelay is the number of cycles between a surprise
	// branch resolving and its BTBP entry becoming visible to the search
	// pipeline (write happens at completion time). Surprises re-executed
	// inside this window are latency misses.
	SurpriseInstallDelay uint64

	// InstallNotTaken also installs never-taken surprise branches. The
	// hardware installs only ever-taken branches (a fall-through needs no
	// BTB entry); kept as an ablation knob.
	InstallNotTaken bool

	// BypassBTBP routes all first-level installs (surprise installs,
	// preloads, bulk-transfer hits) directly into the BTB1 instead of
	// the BTBP — the design the paper argues against: "An additional
	// small BTB [the BTBP] is used to prevent bulk second level
	// transfers from polluting the main first level predictor."
	// Ablation knob; the BTBP still exists but only receives victims.
	BypassBTBP bool

	// Fault configures soft-error injection into the predictor arrays
	// (see internal/fault). The zero value disables it; disabled
	// injection costs one nil pointer check per array read.
	Fault fault.Config

	// StructLayout builds every predictor array (BTB1/BTBP/BTB2, PHT,
	// CTB) on the retained array-of-structs storage backend instead of
	// the default bit-packed structure-of-arrays lanes. The layouts are
	// observationally equivalent — sim.VerifyLayoutDifferential proves
	// it per run — so this is a verification knob, not a behavior knob:
	// the layout differential gate runs the serial oracle with it set.
	StructLayout bool

	// MultiBlockTransfer enables the Section 6 future-work extension:
	// when a bulk transfer surfaces branches whose targets leave the
	// block, the most-referenced target block is chased with one
	// secondary full search (bounded to avoid the exponential fan-out
	// the paper warns about).
	MultiBlockTransfer bool

	Policy Policy
}

// DefaultConfig returns the shipping zEC12 two-level configuration
// (Table 3 configuration 2).
func DefaultConfig() Config {
	return Config{
		BTB1:                 btb.BTB1Config,
		BTBP:                 btb.BTBPConfig,
		BTB2:                 btb.BTB2Config,
		BTB2Enabled:          true,
		PHTEntries:           pht.DefaultEntries,
		CTBEntries:           ctb.DefaultEntries,
		FITEntries:           fit.DefaultEntries,
		SurpriseBHTEntries:   bht.DefaultSurpriseEntries,
		Tracker:              tracker.DefaultConfig,
		SteeringEntries:      512,
		SteeringWays:         2,
		UseSteering:          true,
		Miss:                 predictor.DefaultMissConfig,
		SurpriseInstallDelay: 24,
		Policy:               SemiExclusive,
	}
}

// OneLevelConfig returns Table 3 configuration 1: the baseline with the
// BTB2 disabled.
func OneLevelConfig() Config {
	c := DefaultConfig()
	c.BTB2Enabled = false
	return c
}

// LargeOneLevelConfig returns Table 3 configuration 3: the
// "unrealistically large" 24k-entry low-latency one-level BTB1.
func LargeOneLevelConfig() Config {
	c := OneLevelConfig()
	c.BTB1 = btb.LargeBTB1Config
	return c
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.BTB1.Validate(); err != nil {
		return err
	}
	if err := c.BTBP.Validate(); err != nil {
		return err
	}
	if c.BTB2Enabled {
		if err := c.BTB2.Validate(); err != nil {
			return err
		}
		if err := c.Tracker.Validate(); err != nil {
			return err
		}
		if c.UseSteering && (c.SteeringEntries <= 0 || c.SteeringWays <= 0) {
			return fmt.Errorf("core: steering enabled with invalid geometry %d/%d",
				c.SteeringEntries, c.SteeringWays)
		}
	}
	if err := c.Miss.Validate(); err != nil {
		return err
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"PHTEntries", c.PHTEntries},
		{"CTBEntries", c.CTBEntries},
		{"FITEntries", c.FITEntries},
		{"SurpriseBHTEntries", c.SurpriseBHTEntries},
	} {
		if n.v < 0 {
			return fmt.Errorf("core: %s must be non-negative", n.name)
		}
	}
	if c.Policy > Inclusive {
		return fmt.Errorf("core: unknown policy %d", c.Policy)
	}
	if c.MissMode > MissBoth {
		return fmt.Errorf("core: unknown miss mode %d", c.MissMode)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// FirstLevelCapacity returns the number of branches the first level can
// hold (BTB1 + BTBP).
func (c Config) FirstLevelCapacity() int {
	return c.BTB1.Capacity() + c.BTBP.Capacity()
}

// EstimatedFootprint returns the estimated instruction footprint covered
// by the first level in bytes, using the paper's 24-30 bytes per entry
// rule of thumb (returns low and high bounds).
func (c Config) EstimatedFootprint() (lo, hi int) {
	n := c.FirstLevelCapacity()
	return n * 24, n * 30
}
