package core

import (
	"testing"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// The observability layer must be free when it is off: with a nil tracer
// and detail metrics disabled, the predict and install hot paths may not
// allocate. The tests below pin that contract with AllocsPerRun; the
// benchmarks report the same paths for profiling.

// predictSteadyState returns a hierarchy with one branch promoted into
// the BTB1 plus the instruction that re-executes it, after warming every
// internal scratch buffer to capacity.
func predictSteadyState() (*Hierarchy, trace.Inst) {
	h := New(testConfig())
	a, tgt := zaddr.Addr(0x4000), zaddr.Addr(0x5000)
	in := takenBranch(a, tgt)
	installBranch(h, in, 0)
	now := uint64(100)
	// First hit comes from the BTBP and promotes; later hits stay in the
	// BTB1. A few rounds warm hitBuf and the history ring.
	for i := 0; i < 8; i++ {
		if p, ok := h.Predict(a, now); ok {
			h.Resolve(in, &p, now)
		}
		now += 10
	}
	return h, in
}

func TestPredictPathNoAllocs(t *testing.T) {
	h, in := predictSteadyState()
	now := uint64(1000)
	allocs := testing.AllocsPerRun(1000, func() {
		p, ok := h.Predict(in.Addr, now)
		if !ok {
			t.Fatal("steady-state branch missed the BTB1")
		}
		h.Resolve(in, &p, now)
		now += 10
	})
	if allocs != 0 {
		t.Errorf("predict/resolve hot path allocates %.1f objects/op with observability off, want 0", allocs)
	}
}

// surpriseRound resolves in as a surprise, drains the pending install,
// then evicts the entry so the next round is a surprise again.
func surpriseRound(h *Hierarchy, in trace.Inst, now uint64) {
	h.Resolve(in, nil, now)
	h.Advance(now + h.cfg.SurpriseInstallDelay)
	h.btbp.Invalidate(in.Addr)
	h.btb1.Invalidate(in.Addr)
}

func TestInstallPathNoAllocs(t *testing.T) {
	h := New(testConfig())
	in := takenBranch(zaddr.Addr(0x8000), zaddr.Addr(0x9000))
	now := uint64(0)
	// Warm the pending-install queue and BHT/BTB2 rows to capacity.
	for i := 0; i < 8; i++ {
		surpriseRound(h, in, now)
		now += 100
	}
	allocs := testing.AllocsPerRun(1000, func() {
		surpriseRound(h, in, now)
		now += 100
	})
	if allocs != 0 {
		t.Errorf("surprise install path allocates %.1f objects/op with observability off, want 0", allocs)
	}
}

func BenchmarkPredictResolveNoTracer(b *testing.B) {
	h, in := predictSteadyState()
	now := uint64(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := h.Predict(in.Addr, now)
		if !ok {
			b.Fatal("steady-state branch missed the BTB1")
		}
		h.Resolve(in, &p, now)
		now += 10
	}
}

func BenchmarkSurpriseInstallNoDetail(b *testing.B) {
	h := New(testConfig())
	in := takenBranch(zaddr.Addr(0x8000), zaddr.Addr(0x9000))
	now := uint64(0)
	for i := 0; i < 8; i++ {
		surpriseRound(h, in, now)
		now += 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		surpriseRound(h, in, now)
		now += 100
	}
}
