package core

import (
	"bulkpreload/internal/bht"
	"bulkpreload/internal/btb"
	"bulkpreload/internal/ctb"
	"bulkpreload/internal/fit"
	"bulkpreload/internal/history"
	"bulkpreload/internal/pht"
	"bulkpreload/internal/steering"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/tracker"
	"bulkpreload/internal/zaddr"
)

// Level identifies which first-level structure produced a prediction.
type Level uint8

// Prediction source levels.
const (
	LevelNone Level = iota
	LevelBTB1
	LevelBTBP
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelBTB1:
		return "BTB1"
	case LevelBTBP:
		return "BTBP"
	default:
		return "invalid"
	}
}

// Prediction is a dynamic prediction made by the first level for one
// branch.
type Prediction struct {
	Branch  zaddr.Addr
	Taken   bool
	Target  zaddr.Addr // meaningful when Taken
	Level   Level      // which structure hit
	MRU     bool       // BTB1 hit came from the MRU way (Table 1 timing)
	UsedPHT bool       // direction came from the PHT
	UsedCTB bool       // target came from the CTB
	// Entry is the snapshot of the hit entry, consumed by Resolve.
	Entry btb.Entry
}

// Stats is a point-in-time view of the hierarchy counters; the
// canonical storage is the obs metrics (see RegisterMetrics in
// metrics.go).
type Stats struct {
	Predictions      int64 // dynamic predictions made
	BTB1Hits         int64
	BTBPHits         int64
	Promotions       int64 // BTBP -> BTB1 moves
	BTB1Victims      int64 // victims displaced by promotions
	SurpriseInstalls int64
	PreloadInstalls  int64 // branch-preload-instruction installs
	PHTOverrides     int64 // predictions whose direction came from the PHT
	CTBOverrides     int64 // predictions whose target came from the CTB
	TransferredHits  int64 // BTB2 entries bulk-moved into the BTBP
	TransferReads    int64 // BTB2 row reads performed
	BTB2Writes       int64 // entries written into the BTB2
	ChainedSearches  int64 // secondary block searches (MultiBlockTransfer)
}

type pendingInstall struct {
	at    uint64
	entry btb.Entry
}

// Hierarchy is the complete two-level bulk preload branch predictor.
type Hierarchy struct {
	cfg Config

	btb1 *btb.Table
	btbp *btb.Table
	btb2 *btb.Table // nil when disabled

	pht  *pht.Table       // nil when disabled
	ctb  *ctb.Table       // nil when disabled
	fit  *fit.Table       // nil when disabled
	sbht *bht.SurpriseBHT // nil when disabled
	hist history.History

	steer *steering.Table   // nil when BTB2 or steering disabled
	trk   *tracker.Trackers // nil when BTB2 disabled

	// pendingSurprise holds surprise installs not yet visible to the
	// search pipeline, in nondecreasing visibility-cycle order.
	pendingSurprise []pendingInstall

	// chase state for MultiBlockTransfer: recently chased blocks (to
	// break cycles) and the cross-block reference tally of the current
	// drain batch.
	chased    [8]uint64
	chasedPos int
	crossRefs map[uint64]int

	hitBuf []btb.Hit // scratch for lookups
	met    hierMetrics
	tracer Tracer // optional event sink (see events.go)

	// Detail-metric state (see EnableDetailMetrics): timestamp maps
	// backing the promotion-age and miss-to-install histograms. nil maps
	// and detail=false keep the hot path allocation- and map-free.
	detail      bool
	installedAt map[zaddr.Addr]uint64 // BTBP install cycle per branch
	missAt      map[uint64]uint64     // first outstanding miss report per block
}

// New builds a hierarchy; an invalid config panics (configurations are
// code, not input).
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// The hierarchy-level StructLayout knob cascades into every array's
	// storage backend; a per-table btb.Config override is honored too.
	b1, bp, b2 := cfg.BTB1, cfg.BTBP, cfg.BTB2
	if cfg.StructLayout {
		b1.StructLayout, bp.StructLayout, b2.StructLayout = true, true, true
	}
	h := &Hierarchy{
		cfg:  cfg,
		btb1: btb.New(b1),
		btbp: btb.New(bp),
	}
	h.met.setBounds()
	if cfg.PHTEntries > 0 {
		h.pht = pht.NewLayout(cfg.PHTEntries, cfg.StructLayout)
	}
	if cfg.CTBEntries > 0 {
		h.ctb = ctb.NewLayout(cfg.CTBEntries, cfg.StructLayout)
	}
	if cfg.FITEntries > 0 {
		h.fit = fit.New(cfg.FITEntries)
	}
	if cfg.SurpriseBHTEntries > 0 {
		h.sbht = bht.NewSurpriseBHT(cfg.SurpriseBHTEntries)
	}
	if cfg.BTB2Enabled {
		h.btb2 = btb.New(b2)
		var ord tracker.Orderer
		if cfg.UseSteering {
			h.steer = steering.New(cfg.SteeringEntries, cfg.SteeringWays)
			ord = h.steer
		} else {
			ord = sequentialOrder{}
		}
		// The tracker's search granularity follows the BTB2's row
		// coverage (32 bytes shipping; 64/128 in the future-work study).
		// PartialRows is specified in 32-byte units in Config, so the
		// partial search keeps its 128-byte coverage at any row width.
		tcfg := cfg.Tracker
		tcfg.RowBytes = cfg.BTB2.LineBytes()
		if scaled := cfg.Tracker.PartialRows * zaddr.RowBytes / tcfg.RowBytes; scaled > 0 {
			tcfg.PartialRows = scaled
		} else {
			tcfg.PartialRows = 1
		}
		h.trk = tracker.New(tcfg, ord)
	}
	h.attachInjectors()
	return h
}

// sequentialOrder is the Orderer used when steering is disabled:
// sequential from the entry sector.
type sequentialOrder struct{}

func (sequentialOrder) Order(entry zaddr.Addr) []int {
	start := zaddr.Sector(entry)
	out := make([]int, zaddr.SectorsPerBlock)
	for i := range out {
		out[i] = (start + i) % zaddr.SectorsPerBlock
	}
	return out
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a view of the hierarchy counters.
func (h *Hierarchy) Stats() Stats {
	c := &h.met.counters
	return Stats{
		Predictions:      c.predictions.Value(),
		BTB1Hits:         c.btb1Hits.Value(),
		BTBPHits:         c.btbpHits.Value(),
		Promotions:       c.promotions.Value(),
		BTB1Victims:      c.btb1Victims.Value(),
		SurpriseInstalls: c.surpriseInstalls.Value(),
		PreloadInstalls:  c.preloadInstalls.Value(),
		PHTOverrides:     c.phtOverrides.Value(),
		CTBOverrides:     c.ctbOverrides.Value(),
		TransferredHits:  c.transferredHits.Value(),
		TransferReads:    c.transferReads.Value(),
		BTB2Writes:       c.btb2Writes.Value(),
		ChainedSearches:  c.chainedSearches.Value(),
	}
}

// BTB1Stats, BTBPStats and BTB2Stats expose the underlying table counters
// (BTB2Stats returns zeros when the BTB2 is disabled).
func (h *Hierarchy) BTB1Stats() btb.Stats { return h.btb1.Stats() }
func (h *Hierarchy) BTBPStats() btb.Stats { return h.btbp.Stats() }
func (h *Hierarchy) BTB2Stats() btb.Stats {
	if h.btb2 == nil {
		return btb.Stats{}
	}
	return h.btb2.Stats()
}

// TrackerStats returns the BTB2 search tracker counters (zeros when
// disabled).
func (h *Hierarchy) TrackerStats() tracker.Stats {
	if h.trk == nil {
		return tracker.Stats{}
	}
	return h.trk.Stats()
}

// History exposes the global path history (the engine records resolved
// outcomes through Resolve; direct access is for diagnostics only).
func (h *Hierarchy) History() *history.History { return &h.hist }

// Advance applies all state transitions due by cycle now: surprise
// installs whose write latency has elapsed, and BTB2 bulk-transfer row
// reads whose data has arrived at the BTBP.
//
//zbp:hotpath
func (h *Hierarchy) Advance(now uint64) {
	// Drain due installs by compacting in place rather than re-slicing
	// from the front: [1:] slicing walks the backing array forward and
	// forces append to reallocate periodically, which would put
	// steady-state allocations on the install path.
	if n := 0; len(h.pendingSurprise) > 0 && h.pendingSurprise[0].at <= now {
		for n < len(h.pendingSurprise) && h.pendingSurprise[n].at <= now {
			h.installBTBP(h.pendingSurprise[n].entry, now)
			n++
		}
		m := copy(h.pendingSurprise, h.pendingSurprise[n:])
		h.pendingSurprise = h.pendingSurprise[:m]
	}
	if h.trk == nil {
		return
	}
	for _, rd := range h.trk.Drain(now) {
		h.met.counters.transferReads.Inc()
		h.hitBuf = h.btb2.LookupLine(rd.Line, h.hitBuf[:0])
		h.met.transferBurst.Observe(int64(len(h.hitBuf)))
		for _, hit := range h.hitBuf {
			h.installBTBP(hit.Entry, now)
			h.met.counters.transferredHits.Inc()
			h.noteTransferInstall(hit.Entry.Addr, now)
			h.emit(now, EvTransferHit, hit.Entry.Addr, hit.Entry.Target)
			switch h.cfg.Policy {
			case SemiExclusive:
				// "When an entry is copied from BTB2 to BTBP, it is made
				// LRU in the BTB2."
				h.btb2.Demote(hit.Entry.Addr)
			case TrueExclusive:
				h.btb2.Invalidate(hit.Entry.Addr)
			case Inclusive:
				h.btb2.Touch(hit.Entry.Addr)
			}
			if h.cfg.MultiBlockTransfer && hit.Entry.Target != 0 &&
				!zaddr.SameBlock(hit.Entry.Addr, hit.Entry.Target) {
				if h.crossRefs == nil {
					//zbp:allow hotalloc one-time lazy init, amortized to zero in steady state
					h.crossRefs = make(map[uint64]int)
				}
				h.crossRefs[zaddr.Block(hit.Entry.Target)]++
			}
		}
	}
	h.maybeChase(now)
}

// maybeChase launches at most one secondary full search for the block
// most referenced by just-transferred branch targets — the bounded
// multi-block transfer of Section 6. Recently chased blocks are skipped
// to keep chains from cycling.
//
//zbp:hotpath
func (h *Hierarchy) maybeChase(now uint64) {
	if !h.cfg.MultiBlockTransfer || len(h.crossRefs) == 0 {
		return
	}
	// Leave headroom for demand-triggered searches.
	if h.trk.ActiveSearches(now) >= h.cfg.Tracker.Count-1 {
		return
	}
	best, bestN := uint64(0), 0
	// The key-ordered tie-break makes this argmax a pure function of the
	// map's contents: without it, equal reference counts let Go's
	// randomized iteration order pick the chased block, which diverged
	// checkpoint/resume runs.
	//zbp:allow determinism argmax with key-ordered tie-break is order-independent
	for blk, n := range h.crossRefs {
		if n > bestN || (n == bestN && bestN > 0 && blk < best) {
			best, bestN = blk, n
		}
	}
	for k := range h.crossRefs {
		delete(h.crossRefs, k)
	}
	// Require at least two referencing branches: a lone cross-block jump
	// is weak evidence the target block's content is about to be needed.
	if bestN < 2 {
		return
	}
	for _, c := range h.chased {
		if c == best {
			return
		}
	}
	h.chased[h.chasedPos] = best
	h.chasedPos = (h.chasedPos + 1) % len(h.chased)
	h.met.counters.chainedSearches.Inc()
	entry := zaddr.Addr(best * zaddr.BlockBytes)
	h.emit(now, EvChase, entry, 0)
	// A chase is known-productive (real branch targets point there), so
	// it earns a full search: both validity bits are asserted.
	h.trk.OnBTB1Miss(entry, now)
	h.trk.OnICacheMiss(entry, now)
}

// installBTBP writes an entry into the BTBP (all first-level writes land
// there; the displaced BTBP victim is simply dropped — anything that
// entered the BTBP was already written to the BTB2 on its way in). If
// the branch is already resident anywhere in the first level, the write
// is dropped: the live copy carries fresher training than a (possibly
// stale) BTB2 transfer or a redundant surprise install, and duplicates
// would waste first-level capacity.
//
//zbp:hotpath
func (h *Hierarchy) installBTBP(e btb.Entry, now uint64) {
	if h.btb1.Contains(e.Addr) || h.btbp.Contains(e.Addr) {
		return
	}
	if h.cfg.BypassBTBP {
		// Ablation: write straight into the BTB1, displacing live
		// content — the pollution the BTBP exists to absorb. The victim
		// still cascades to the BTB2 so capacity is not lost unfairly.
		victim, evicted := h.btb1.Insert(e)
		if evicted {
			h.writeBTB2Victim(victim)
		}
		return
	}
	h.btbp.Insert(e)
	h.noteInstall(e.Addr, now)
}

// PendingSurpriseFor reports whether a surprise install for branch a is
// queued but not yet visible (the "latency" class of Figure 4).
func (h *Hierarchy) PendingSurpriseFor(a zaddr.Addr) bool {
	for i := range h.pendingSurprise {
		if h.pendingSurprise[i].entry.Addr == a {
			return true
		}
	}
	return false
}

// SearchLine reports whether the first level holds any entry for the
// 32-byte line containing a at or after a's offset — one search of the
// parallel BTB1+BTBP read. nt2 reports whether the row could supply two
// predictions at once (>= 2 matching entries), which earns the paired
// not-taken rate of Table 1.
func (h *Hierarchy) SearchLine(a zaddr.Addr, now uint64) (found, nt2 bool) {
	h.Advance(now)
	n := 0
	off := zaddr.RowOffset(a)
	h.hitBuf = h.btb1.LookupLine(a, h.hitBuf[:0])
	h.hitBuf = h.btbp.LookupLine(a, h.hitBuf)
	for _, hit := range h.hitBuf {
		if zaddr.RowOffset(hit.Entry.Addr) >= off {
			n++
		}
	}
	return n > 0, n >= 2
}

// Predict performs the first-level lookup for the branch at a. On a BTBP
// hit the entry is moved into the BTB1 and the BTB1 victim cascades into
// the BTBP and BTB2 per the configured policy. ok is false when the
// branch misses the whole first level (a surprise branch).
//
//zbp:hotpath
func (h *Hierarchy) Predict(a zaddr.Addr, now uint64) (Prediction, bool) {
	h.Advance(now)
	var (
		e     btb.Entry
		level Level
		mru   bool
	)
	if e1, ok := h.btb1.Find(a); ok {
		e = e1
		level = LevelBTB1
		mru = h.hitBufMRU(a)
		h.btb1.Touch(a)
		h.met.counters.btb1Hits.Inc()
	} else if ep, ok := h.btbp.Find(a); ok {
		e = ep
		level = LevelBTBP
		h.met.counters.btbpHits.Inc()
		h.promote(ep, now)
	} else {
		return Prediction{}, false
	}

	p := Prediction{Branch: a, Level: level, MRU: mru, Entry: e}
	// Direction: bimodal unless the entry is marked multi-direction and
	// the PHT has a tagged match.
	p.Taken = e.Dir.Taken()
	if e.UsePHT && h.pht != nil {
		if taken, ok := h.pht.Lookup(&h.hist, a); ok {
			p.Taken = taken
			p.UsedPHT = true
			h.met.counters.phtOverrides.Inc()
		}
	}
	// Target: stored target unless marked multi-target with a CTB match.
	if p.Taken {
		p.Target = e.Target
		if e.UseCTB && h.ctb != nil {
			if tgt, ok := h.ctb.Lookup(&h.hist, a); ok {
				p.Target = tgt
				p.UsedCTB = true
				h.met.counters.ctbOverrides.Inc()
			}
		}
	}
	h.met.counters.predictions.Inc()
	h.emit(now, EvPredict, p.Branch, p.Target)
	return p, true
}

// hitBufMRU reports whether branch a currently sits in the MRU way of its
// BTB1 row.
//
//zbp:hotpath
func (h *Hierarchy) hitBufMRU(a zaddr.Addr) bool {
	h.hitBuf = h.btb1.LookupLine(a, h.hitBuf[:0])
	for _, hit := range h.hitBuf {
		if hit.Entry.Addr == a {
			return hit.MRU
		}
	}
	return false
}

// promote moves a BTBP entry into the BTB1 ("content is moved into the
// BTB1 upon making a branch prediction from the BTBP"); the displaced
// BTB1 victim is written into the BTBP and the BTB2.
//
//zbp:hotpath
func (h *Hierarchy) promote(e btb.Entry, now uint64) {
	h.btbp.Invalidate(e.Addr)
	victim, evicted := h.btb1.Insert(e)
	h.met.counters.promotions.Inc()
	h.notePromotion(e.Addr, now)
	h.emit(now, EvPromotion, e.Addr, 0)
	if h.cfg.Policy == TrueExclusive && h.btb2 != nil {
		// "exclusivity would be guaranteed by ... explicitly invalidating
		// the BTB2 hit" — the extra write traffic a truly exclusive
		// design pays (Section 3.3).
		h.btb2.Invalidate(e.Addr)
	}
	if !evicted {
		return
	}
	h.met.counters.btb1Victims.Inc()
	h.emit(now, EvVictim, victim.Addr, 0)
	h.btbp.Insert(victim)
	h.writeBTB2Victim(victim)
}

// writeBTB2Victim writes a BTB1 victim into the BTB2 per policy.
//
//zbp:hotpath
func (h *Hierarchy) writeBTB2Victim(victim btb.Entry) {
	if h.btb2 == nil {
		return
	}
	switch h.cfg.Policy {
	case SemiExclusive, TrueExclusive:
		// "the content that is evicted from the BTB1 is written into the
		// LRU column in the BTB2 and made MRU" — btb.Insert replaces the
		// LRU way and promotes.
		h.btb2.Insert(victim)
		h.met.counters.btb2Writes.Inc()
	case Inclusive:
		// The copy already exists (inclusive); refresh it with the
		// learned state, installing only if it was lost to aliasing.
		if !h.btb2.Update(victim) {
			h.btb2.Insert(victim)
		}
		h.met.counters.btb2Writes.Inc()
	}
}

// Resolve trains the hierarchy with the resolved outcome of branch in.
// p must be the Prediction previously returned for this branch, or nil
// for a surprise branch. now is the resolution (completion) cycle.
//
//zbp:hotpath
func (h *Hierarchy) Resolve(in trace.Inst, p *Prediction, now uint64) {
	if p != nil {
		h.resolvePredicted(in, p)
	} else {
		h.resolveSurprise(in, now)
	}
	// Recorded last: the training above must see the path history as it
	// was when the branch predicted.
	h.hist.RecordPrediction(in.Addr, in.Taken)
}

//zbp:hotpath
func (h *Hierarchy) resolvePredicted(in trace.Inst, p *Prediction) {
	e := p.Entry
	dirWrong := p.Taken != in.Taken
	e.Dir = e.Dir.Update(in.Taken)
	// A branch observed in both directions is a multi-direction branch:
	// gate it onto the PHT from now on.
	if dirWrong && in.Kind == trace.CondDirect {
		e.UsePHT = true
	}
	if h.pht != nil && e.UsePHT {
		h.pht.Update(&h.hist, in.Addr, in.Taken)
	}
	if in.Taken {
		if e.Target != 0 && e.Target != in.Target {
			// Multiple targets observed: gate onto the CTB.
			e.UseCTB = true
		}
		if h.ctb != nil && e.UseCTB {
			h.ctb.Update(&h.hist, in.Addr, in.Target)
		}
		e.Target = in.Target
		if h.fit != nil {
			h.fit.Train(in.Addr, in.Target)
		}
	}
	e.Length = in.Length
	// Write back to wherever the entry now lives (BTB1 after promotion;
	// it can also still be mid-flight in the BTBP in exotic interleavings).
	if !h.btb1.Update(e) {
		h.btbp.Update(e)
	}
}

//zbp:hotpath
func (h *Hierarchy) resolveSurprise(in trace.Inst, now uint64) {
	if h.sbht != nil {
		h.sbht.Update(in.Addr, in.Taken)
	}
	// Only ever-taken branches earn BTB entries; a never-taken branch
	// falls through correctly without one.
	if !in.Taken && !h.cfg.InstallNotTaken {
		return
	}
	e := btb.Entry{
		Addr:   in.Addr,
		Target: in.Target,
		Dir:    bht.Init(in.Taken),
		Length: in.Length,
	}
	if !in.Taken {
		e.Target = 0
	}
	h.met.counters.surpriseInstalls.Inc()
	h.emit(now, EvSurpriseInstall, in.Addr, e.Target)
	// The BTBP write becomes visible after the completion-time write
	// latency; re-executions inside the window are latency surprises.
	h.pendingSurprise = append(h.pendingSurprise, pendingInstall{
		at:    now + h.cfg.SurpriseInstallDelay,
		entry: e,
	})
	// "The BTB2 is written upon surprise installs into the branch
	// prediction hierarchy."
	if h.btb2 != nil {
		if h.cfg.Policy == TrueExclusive && h.btb1.Contains(in.Addr) {
			return // avoid the duplicate a truly exclusive design forbids
		}
		h.btb2.Insert(e)
		h.met.counters.btb2Writes.Inc()
	}
}

// PreloadBranch executes a branch preload instruction: software names an
// upcoming branch and its target, and the entry is written into the BTBP
// (Section 3.1 lists "branch preload instructions" among the BTBP write
// sources). The write shares the surprise-install port and latency.
func (h *Hierarchy) PreloadBranch(branch, target zaddr.Addr, length uint8, now uint64) {
	if h.btb1.Contains(branch) || h.btbp.Contains(branch) {
		return // already resident; the live copy is fresher
	}
	h.met.counters.preloadInstalls.Inc()
	h.emit(now, EvPreloadInstall, branch, target)
	h.pendingSurprise = append(h.pendingSurprise, pendingInstall{
		at: now + h.cfg.SurpriseInstallDelay,
		entry: btb.Entry{
			Addr:   branch,
			Target: target,
			Dir:    bht.WeakT, // software preloads ever-taken branches
			Length: length,
		},
	})
}

// FITLookup reports whether the FIT accelerates the re-index for a
// predicted-taken branch at a redirecting to next.
func (h *Hierarchy) FITLookup(a, next zaddr.Addr) bool {
	if h.fit == nil {
		return false
	}
	return h.fit.Lookup(a, next)
}

// ReportBTB1Miss feeds a detected first-level miss (Section 3.4) into the
// BTB2 search trackers. No-op without a BTB2.
func (h *Hierarchy) ReportBTB1Miss(a zaddr.Addr, now uint64) {
	if h.trk != nil {
		h.met.counters.missReports.Inc()
		h.noteMissReport(a, now)
		h.emit(now, EvMissReport, a, 0)
		h.trk.OnBTB1Miss(a, now)
	}
}

// ReportICacheMiss feeds an L1I miss into the BTB2 search trackers
// (Section 3.5's filter). No-op without a BTB2.
func (h *Hierarchy) ReportICacheMiss(a zaddr.Addr, now uint64) {
	if h.trk != nil {
		h.met.counters.icacheReports.Inc()
		h.noteMissReport(a, now)
		h.emit(now, EvICacheReport, a, 0)
		h.trk.OnICacheMiss(a, now)
	}
}

// ObserveComplete feeds a completed instruction into the steering
// ordering table (Section 3.7).
func (h *Hierarchy) ObserveComplete(a zaddr.Addr) {
	if h.steer != nil {
		h.steer.ObserveComplete(a)
	}
}

// ObserveCompleteBatch feeds a run of completed instructions into the
// steering ordering table in order — the batched twin of
// ObserveComplete, hoisting the nil check and method dispatch out of
// the engine's per-record loop. Equivalent to calling ObserveComplete
// once per record.
//
//zbp:hotpath
func (h *Hierarchy) ObserveCompleteBatch(ins []trace.Inst) {
	if h.steer == nil {
		return
	}
	for i := range ins {
		h.steer.ObserveComplete(ins[i].Addr)
	}
}

// Contains reports which levels currently hold branch a (diagnostics).
func (h *Hierarchy) Contains(a zaddr.Addr) (inBTB1, inBTBP, inBTB2 bool) {
	inBTB1 = h.btb1.Contains(a)
	inBTBP = h.btbp.Contains(a)
	if h.btb2 != nil {
		inBTB2 = h.btb2.Contains(a)
	}
	return
}

// Reset restores the hierarchy to power-on state.
func (h *Hierarchy) Reset() {
	h.btb1.Reset()
	h.btbp.Reset()
	if h.btb2 != nil {
		h.btb2.Reset()
	}
	if h.pht != nil {
		h.pht.Reset()
	}
	if h.ctb != nil {
		h.ctb.Reset()
	}
	if h.fit != nil {
		h.fit.Reset()
	}
	if h.sbht != nil {
		h.sbht.Reset()
	}
	if h.steer != nil {
		h.steer.Reset()
	}
	if h.trk != nil {
		h.trk.Reset()
	}
	for _, j := range h.FaultInjectors() {
		j.Reset()
	}
	h.hist.Reset()
	h.pendingSurprise = h.pendingSurprise[:0]
	h.chased = [8]uint64{}
	h.chasedPos = 0
	h.crossRefs = nil
	h.met.counters = hierCounters{}
	h.met.promotionAge.Reset()
	h.met.transferBurst.Reset()
	h.met.missToInstall.Reset()
	if h.detail {
		clear(h.installedAt)
		clear(h.missAt)
	}
}

// SurpriseGuess returns the static direction guess for a surprise branch:
// always taken for unconditional kinds, otherwise the tagless surprise
// BHT combined with the opcode-derived static bias.
func (h *Hierarchy) SurpriseGuess(in trace.Inst) bool {
	if in.Kind.AlwaysTaken() {
		return true
	}
	if h.sbht != nil {
		return h.sbht.Guess(in.Addr, in.StaticTaken)
	}
	return in.StaticTaken
}
