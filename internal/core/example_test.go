package core_test

import (
	"fmt"

	"bulkpreload/internal/core"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// Example shows the essential hierarchy lifecycle: a surprise branch is
// installed into the BTBP, becomes predictable once the install-write
// latency elapses, and is promoted into the BTB1 on its first prediction.
func Example() {
	h := core.New(core.DefaultConfig())

	branch := trace.Inst{
		Addr: 0x1000, Target: 0x2000, Length: 4,
		Kind: trace.CondDirect, Taken: true,
	}

	// First encounter: the whole first level misses — a surprise branch.
	if _, ok := h.Predict(branch.Addr, 0); !ok {
		fmt.Println("surprise branch")
	}
	h.Resolve(branch, nil, 0) // training installs it (BTBP + BTB2)

	// After the install latency, the BTBP predicts it; using the
	// prediction moves the entry into the BTB1.
	p, ok := h.Predict(branch.Addr, 100)
	fmt.Printf("hit=%v level=%v taken=%v target=%#x\n", ok, p.Level, p.Taken, uint64(p.Target))

	inBTB1, _, inBTB2 := h.Contains(branch.Addr)
	fmt.Printf("promoted to BTB1: %v, copy in BTB2: %v\n", inBTB1, inBTB2)

	// Output:
	// surprise branch
	// hit=true level=BTBP taken=true target=0x2000
	// promoted to BTB1: true, copy in BTB2: true
}

// ExampleHierarchy_ReportBTB1Miss demonstrates a bulk preload: a
// perceived BTB1 miss plus an instruction-cache miss in the same 4 KB
// block trigger a full 128-row BTB2 search whose hits land in the BTBP.
func ExampleHierarchy_ReportBTB1Miss() {
	h := core.New(core.DefaultConfig())

	// Populate the BTB2 with branches of one 4 KB block via surprise
	// installs (surprise installs write the BTB2 directly).
	for i := 0; i < 8; i++ {
		br := trace.Inst{
			Addr:   zaddr.Addr(0x40000 + i*160),
			Target: 0x41000, Length: 4, Kind: trace.CondDirect, Taken: true,
		}
		h.Resolve(br, nil, 0)
	}

	// A perceived miss + I-cache miss in the block: fully active tracker,
	// full 4 KB search (start delay 7 + pipeline 8 + 128 rows = done well
	// within 200 cycles).
	h.ReportBTB1Miss(0x40000, 1000)
	h.ReportICacheMiss(0x40000, 1000)
	h.Advance(1000 + 200)

	fmt.Printf("bulk-transferred entries: %d\n", h.Stats().TransferredHits)
	// Output:
	// bulk-transferred entries: 8
}
