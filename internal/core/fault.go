package core

import (
	"strings"

	"bulkpreload/internal/fault"
	"bulkpreload/internal/obs"
)

// attachInjectors builds one fault injector per configured structure and
// hands it to the structure. Structures with a zero rate (or absent from
// the configuration) keep a nil injector — the free disabled state.
// Called once from New; the FIT is deliberately outside the fault model:
// a stale FIT entry only forfeits a re-index acceleration it would have
// earned, which the accuracy/CPI studies cannot observe.
//
// The injector domain is btb's 72-bit logical entry payload. The
// restatement below is verified field-by-field against btb's exported
// layout fact at build time, so the bit positions this wiring assumes
// cannot silently drift from btb's declaration:
//
//zbp:layout btb.payload word:72 target:0..63 dir:64..65 usePHT:66 useCTB:67 length:68..70 valid:71
func (h *Hierarchy) attachInjectors() {
	fc := h.cfg.Fault
	if !fc.Enabled() {
		return
	}
	mk := func(name string, perM float64) *fault.Injector {
		return fault.NewInjector(name, perM, fc.Protection, fault.DeriveSeed(fc.Seed, name), fc.RecordSites)
	}
	h.btb1.SetInjector(mk("btb1", fc.BTB1PerM))
	h.btbp.SetInjector(mk("btbp", fc.BTBPPerM))
	if h.btb2 != nil {
		h.btb2.SetInjector(mk("btb2", fc.BTB2PerM))
	}
	if h.pht != nil {
		h.pht.SetInjector(mk("pht", fc.PHTPerM))
	}
	if h.ctb != nil {
		h.ctb.SetInjector(mk("ctb", fc.CTBPerM))
	}
	if h.sbht != nil {
		h.sbht.SetInjector(mk("sbht", fc.SBHTPerM))
	}
}

// FaultInjectors returns the attached injectors, densest structure
// first; nil entries (disabled structures) are omitted. Empty when fault
// injection is off.
func (h *Hierarchy) FaultInjectors() []*fault.Injector {
	var out []*fault.Injector
	add := func(j *fault.Injector) {
		if j != nil {
			out = append(out, j)
		}
	}
	add(h.btb1.Injector())
	add(h.btbp.Injector())
	if h.btb2 != nil {
		add(h.btb2.Injector())
	}
	if h.pht != nil {
		add(h.pht.Injector())
	}
	if h.ctb != nil {
		add(h.ctb.Injector())
	}
	if h.sbht != nil {
		add(h.sbht.Injector())
	}
	return out
}

// FaultStats aggregates injection counters across every structure.
func (h *Hierarchy) FaultStats() fault.Stats {
	var s fault.Stats
	for _, j := range h.FaultInjectors() {
		s.Add(j.Stats())
	}
	return s
}

// FaultSites returns every recorded strike site keyed by structure name
// (empty unless Config.Fault.RecordSites). The site slices are shared
// with the injectors; callers must not mutate them.
func (h *Hierarchy) FaultSites() map[string][]fault.Site {
	out := make(map[string][]fault.Site)
	for _, j := range h.FaultInjectors() {
		out[j.Name()] = j.Sites()
	}
	return out
}

// registerFaultMetrics enumerates each injector's counters into r as
// "fault_<structure>_*". Called from RegisterMetrics.
func (h *Hierarchy) registerFaultMetrics(r *obs.Registry) {
	for _, j := range h.FaultInjectors() {
		j.RegisterMetrics(r, "fault_"+strings.ToLower(j.Name())+"_")
	}
}
