package core

import (
	"testing"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// testConfig returns a small but fully-featured two-level config so tests
// can exercise evictions without thousands of installs.
func testConfig() Config {
	c := DefaultConfig()
	c.BTB1 = btb.Config{Name: "BTB1", Rows: 16, Ways: 2, IndexHi: 55, IndexLo: 58}
	c.BTBP = btb.Config{Name: "BTBP", Rows: 8, Ways: 2, IndexHi: 56, IndexLo: 58}
	c.BTB2 = btb.Config{Name: "BTB2", Rows: 64, Ways: 2, IndexHi: 53, IndexLo: 58}
	c.SurpriseInstallDelay = 10
	return c
}

func takenBranch(a, tgt zaddr.Addr) trace.Inst {
	return trace.Inst{Addr: a, Target: tgt, Length: 4, Kind: trace.CondDirect, Taken: true}
}

// run a surprise resolve and make its install visible.
func installBranch(h *Hierarchy, in trace.Inst, now uint64) {
	h.Resolve(in, nil, now)
	h.Advance(now + h.cfg.SurpriseInstallDelay)
}

func TestConfigValidators(t *testing.T) {
	for _, c := range []Config{DefaultConfig(), OneLevelConfig(), LargeOneLevelConfig(), testConfig()} {
		if err := c.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	bad := DefaultConfig()
	bad.PHTEntries = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative PHT entries accepted")
	}
	bad2 := DefaultConfig()
	bad2.SteeringEntries = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero steering entries accepted with steering enabled")
	}
	bad3 := DefaultConfig()
	bad3.Policy = Policy(9)
	if err := bad3.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if SemiExclusive.String() != "semi-exclusive" || TrueExclusive.String() != "true-exclusive" ||
		Inclusive.String() != "inclusive" || Policy(9).String() != "Policy(9)" {
		t.Error("Policy.String wrong")
	}
	if LevelNone.String() != "none" || LevelBTB1.String() != "BTB1" || LevelBTBP.String() != "BTBP" {
		t.Error("Level.String wrong")
	}
}

func TestFootprintEstimate(t *testing.T) {
	// Paper: first level (4k + 768 branches) covers 114 KB - 142.5 KB.
	c := DefaultConfig()
	lo, hi := c.EstimatedFootprint()
	if lo != 4864*24 || hi != 4864*30 {
		t.Errorf("footprint = %d..%d", lo, hi)
	}
	if float64(lo)/1024 != 114.0 {
		t.Errorf("low bound = %.1f KB, want 114", float64(lo)/1024)
	}
	if float64(hi)/1024 != 142.5 {
		t.Errorf("high bound = %.1f KB, want 142.5", float64(hi)/1024)
	}
}

func TestSurpriseInstallVisibilityDelay(t *testing.T) {
	h := New(testConfig())
	br := takenBranch(0x1000, 0x2000)
	if _, ok := h.Predict(br.Addr, 0); ok {
		t.Fatal("empty hierarchy predicted")
	}
	h.Resolve(br, nil, 100)
	// Within the install window: still a miss, and flagged as pending.
	if _, ok := h.Predict(br.Addr, 105); ok {
		t.Fatal("prediction visible before install delay elapsed")
	}
	if !h.PendingSurpriseFor(br.Addr) {
		t.Fatal("pending install not reported")
	}
	// After the window: predicted from the BTBP.
	p, ok := h.Predict(br.Addr, 111)
	if !ok {
		t.Fatal("install never became visible")
	}
	if p.Level != LevelBTBP {
		t.Errorf("first prediction level = %v, want BTBP", p.Level)
	}
	if !p.Taken || p.Target != 0x2000 {
		t.Errorf("prediction = %+v", p)
	}
	if h.PendingSurpriseFor(br.Addr) {
		t.Error("install still pending after Advance")
	}
}

func TestBTBPPromotionToBTB1(t *testing.T) {
	h := New(testConfig())
	br := takenBranch(0x1000, 0x2000)
	installBranch(h, br, 0)
	// First prediction comes from BTBP and moves the entry to BTB1.
	if p, _ := h.Predict(br.Addr, 100); p.Level != LevelBTBP {
		t.Fatalf("first hit level = %v", p.Level)
	}
	in1, inP, _ := h.Contains(br.Addr)
	if !in1 {
		t.Error("entry not promoted to BTB1")
	}
	if inP {
		t.Error("entry not removed from BTBP on promotion (moved, not copied)")
	}
	// Second prediction hits the BTB1.
	if p, _ := h.Predict(br.Addr, 200); p.Level != LevelBTB1 {
		t.Errorf("second hit level = %v", p.Level)
	}
	st := h.Stats()
	if st.Promotions != 1 || st.BTBPHits != 1 || st.BTB1Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestVictimCascadeToBTBPAndBTB2(t *testing.T) {
	cfg := testConfig()
	h := New(cfg)
	// Fill one BTB1 row (2 ways) and overflow it. BTB1 rows stride:
	// 16 rows * 32 B = 512 B.
	a := zaddr.Addr(0x1000)
	b := a + 512
	c := a + 1024
	for _, addr := range []zaddr.Addr{a, b, c} {
		installBranch(h, takenBranch(addr, addr+0x100), 0)
		h.Predict(addr, 1000) // promote into BTB1
		h.Resolve(takenBranch(addr, addr+0x100), &Prediction{Branch: addr, Taken: true, Target: addr + 0x100, Entry: btb.Entry{Addr: addr, Target: addr + 0x100, Length: 4}}, 1000)
	}
	// a was LRU in its BTB1 row; promoting c must have evicted it into
	// BTBP and BTB2.
	in1, inP, in2 := h.Contains(a)
	if in1 {
		t.Error("victim still in BTB1")
	}
	if !inP {
		t.Error("victim not written to BTBP")
	}
	if !in2 {
		t.Error("victim not written to BTB2")
	}
	if st := h.Stats(); st.BTB1Victims != 1 {
		t.Errorf("BTB1Victims = %d, want 1", st.BTB1Victims)
	}
}

func TestBulkTransferEndToEnd(t *testing.T) {
	cfg := testConfig()
	// Widen the BTB2 so first-level churn does not also evict the branch
	// under test from the second level.
	cfg.BTB2 = btb.Config{Name: "BTB2", Rows: 64, Ways: 4, IndexHi: 53, IndexLo: 58}
	h := New(cfg)
	// Put a branch in the BTB2 only (surprise install writes BTB2
	// immediately; evict it from the first level by never promoting and
	// letting BTBP churn push it out).
	br := takenBranch(0x40010, 0x40100)
	h.Resolve(br, nil, 0)
	h.Advance(100) // BTBP install visible
	// Remove from first level via churn: conflicting branches share br's
	// BTB1 and BTBP rows but live in other 4 KB blocks and in a different
	// BTB2 row, so the bulk transfer of br's block later returns only br.
	for i := 1; i <= 8; i++ {
		filler := takenBranch(br.Addr+zaddr.Addr(i*4096+512), 0x9000)
		installBranch(h, filler, uint64(i*100))
		h.Predict(filler.Addr, uint64(i*100+50))
	}
	in1, inP, in2 := h.Contains(br.Addr)
	if in1 || inP {
		t.Fatalf("test setup: branch still in first level (btb1=%v btbp=%v)", in1, inP)
	}
	if !in2 {
		t.Fatal("test setup: branch lost from BTB2")
	}
	// Now: BTB1 miss + I-cache miss in its block trigger a full search.
	now := uint64(100000)
	h.ReportBTB1Miss(br.Addr, now)
	h.ReportICacheMiss(br.Addr, now)
	// Full transfer done within 7 + 8 + 128 cycles.
	h.Advance(now + 200)
	_, inP, _ = h.Contains(br.Addr)
	if !inP {
		t.Fatal("bulk transfer did not preload the branch into the BTBP")
	}
	st := h.Stats()
	if st.TransferredHits == 0 || st.TransferReads == 0 {
		t.Errorf("transfer stats = %+v", st)
	}
	// The prediction now hits without any new surprise.
	if _, ok := h.Predict(br.Addr, now+300); !ok {
		t.Error("preloaded branch still missing")
	}
}

func TestSemiExclusiveDemotesBTB2Hit(t *testing.T) {
	h := New(testConfig())
	br := takenBranch(0x40010, 0x40100)
	h.Resolve(br, nil, 0) // BTB2 write
	now := uint64(1000)
	h.ReportBTB1Miss(br.Addr, now)
	h.ReportICacheMiss(br.Addr, now)
	h.Advance(now + 200)
	// The BTB2 copy must still exist (semi-exclusive: demoted, not
	// invalidated).
	_, _, in2 := h.Contains(br.Addr)
	if !in2 {
		t.Error("semi-exclusive policy invalidated the BTB2 hit")
	}
}

func TestTrueExclusiveInvalidatesBTB2Hit(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = TrueExclusive
	h := New(cfg)
	br := takenBranch(0x40010, 0x40100)
	h.Resolve(br, nil, 0)
	now := uint64(1000)
	h.ReportBTB1Miss(br.Addr, now)
	h.ReportICacheMiss(br.Addr, now)
	h.Advance(now + 200)
	if _, _, in2 := h.Contains(br.Addr); in2 {
		t.Error("true-exclusive policy left the BTB2 hit valid")
	}
}

func TestPHTGatingOnDirectionMispredict(t *testing.T) {
	h := New(testConfig())
	br := takenBranch(0x3000, 0x5000)
	installBranch(h, br, 0)
	// Alternating branch: T,NT,T,NT... The bimodal mispredicts; after the
	// first wrong direction the entry is gated onto the PHT.
	taken := true
	phtUses := 0
	for i := 0; i < 40; i++ {
		now := uint64(1000 + i*100)
		p, ok := h.Predict(br.Addr, now)
		if !ok {
			t.Fatal("prediction lost")
		}
		in := br
		in.Taken = taken
		if !taken {
			in.Target = 0x5000
		}
		h.Resolve(in, &p, now)
		if p.UsedPHT {
			phtUses++
		}
		taken = !taken
	}
	if phtUses == 0 {
		t.Error("PHT never engaged for a multi-direction branch")
	}
	if h.Stats().PHTOverrides == 0 {
		t.Error("PHTOverrides not counted")
	}
}

func TestCTBGatingOnTargetChange(t *testing.T) {
	h := New(testConfig())
	a := zaddr.Addr(0x3000)
	// Branch alternates targets 0x5000/0x7000 correlated with path.
	installBranch(h, takenBranch(a, 0x5000), 0)
	ctbUses := 0
	for i := 0; i < 40; i++ {
		now := uint64(1000 + i*100)
		tgt := zaddr.Addr(0x5000)
		pathBr := zaddr.Addr(0x100)
		if i%2 == 1 {
			tgt = 0x7000
			pathBr = 0x200
		}
		// Distinct path: a preceding taken branch differs per target.
		h.History().RecordPrediction(pathBr, true)
		p, ok := h.Predict(a, now)
		if !ok {
			t.Fatal("prediction lost")
		}
		in := trace.Inst{Addr: a, Target: tgt, Length: 4, Kind: trace.IndirectOther, Taken: true}
		h.Resolve(in, &p, now)
		if p.UsedCTB {
			ctbUses++
		}
	}
	if ctbUses == 0 {
		t.Error("CTB never engaged for a multi-target branch")
	}
}

func TestNotTakenSurpriseNotInstalled(t *testing.T) {
	h := New(testConfig())
	in := trace.Inst{Addr: 0x1000, Target: 0x2000, Length: 4, Kind: trace.CondDirect, Taken: false}
	h.Resolve(in, nil, 0)
	h.Advance(1000)
	if in1, inP, in2 := h.Contains(in.Addr); in1 || inP || in2 {
		t.Error("never-taken surprise branch was installed")
	}
	// With the ablation knob it is installed.
	cfg := testConfig()
	cfg.InstallNotTaken = true
	h2 := New(cfg)
	h2.Resolve(in, nil, 0)
	h2.Advance(1000)
	if _, inP, _ := h2.Contains(in.Addr); !inP {
		t.Error("InstallNotTaken knob ignored")
	}
}

func TestSearchLine(t *testing.T) {
	h := New(testConfig())
	a := zaddr.Addr(0x2008)
	b := zaddr.Addr(0x2010) // same 32-byte line
	installBranch(h, takenBranch(a, 0x9000), 0)
	installBranch(h, takenBranch(b, 0x9000), 0)
	found, nt2 := h.SearchLine(0x2000, 1000)
	if !found || !nt2 {
		t.Errorf("SearchLine(0x2000) = %v,%v want true,true", found, nt2)
	}
	// Offset filter: searching after both branches finds nothing.
	found, _ = h.SearchLine(0x2018, 1000)
	if found {
		t.Error("SearchLine ignored the offset filter")
	}
	// Line with nothing.
	if found, _ := h.SearchLine(0x9000, 1000); found {
		t.Error("empty line reported found")
	}
}

func TestSurpriseGuess(t *testing.T) {
	h := New(testConfig())
	// Unconditional kinds are always guessed taken.
	call := trace.Inst{Addr: 0x100, Target: 0x900, Length: 4, Kind: trace.Call, Taken: true}
	if !h.SurpriseGuess(call) {
		t.Error("call not guessed taken")
	}
	// Untrained conditional defers to the static guess.
	cond := trace.Inst{Addr: 0x200, Length: 4, Kind: trace.CondDirect, StaticTaken: true}
	if !h.SurpriseGuess(cond) {
		t.Error("static taken guess ignored")
	}
	cond.StaticTaken = false
	if h.SurpriseGuess(cond) {
		t.Error("static not-taken guess ignored")
	}
	// After training, the surprise BHT overrides the static guess.
	condTaken := cond
	condTaken.Taken = true
	condTaken.Target = 0x1234
	h.Resolve(condTaken, nil, 0)
	if !h.SurpriseGuess(cond) {
		t.Error("trained surprise BHT ignored")
	}
}

func TestFITLookupAfterTraining(t *testing.T) {
	h := New(testConfig())
	br := takenBranch(0x1000, 0x2000)
	installBranch(h, br, 0)
	p, _ := h.Predict(br.Addr, 100)
	h.Resolve(br, &p, 100)
	if !h.FITLookup(br.Addr, 0x2000) {
		t.Error("FIT not trained by taken resolve")
	}
	if h.FITLookup(br.Addr, 0x3000) {
		t.Error("FIT hit with wrong next address")
	}
}

func TestOneLevelConfigRejectsBTB2Calls(t *testing.T) {
	h := New(OneLevelConfig())
	// Must be safe no-ops.
	h.ReportBTB1Miss(0x1000, 0)
	h.ReportICacheMiss(0x1000, 0)
	h.Advance(100)
	h.ObserveComplete(0x1000)
	if st := h.TrackerStats(); st.BTB1Misses != 0 {
		t.Error("disabled BTB2 tracked misses")
	}
	if h.BTB2Stats() != (btb.Stats{}) {
		t.Error("disabled BTB2 has stats")
	}
}

func TestReset(t *testing.T) {
	h := New(testConfig())
	installBranch(h, takenBranch(0x1000, 0x2000), 0)
	h.Predict(0x1000, 100)
	h.Reset()
	if _, ok := h.Predict(0x1000, 200); ok {
		t.Error("Reset left predictions")
	}
	// Predictions counts only successful predictions; the post-reset miss
	// contributes nothing.
	if st := h.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	bad := DefaultConfig()
	bad.Miss.SearchLimit = 0
	New(bad)
}
