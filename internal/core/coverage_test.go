package core

import (
	"testing"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

func TestMissModeStrings(t *testing.T) {
	cases := map[MissMode]string{
		MissSpeculative:    "speculative",
		MissDecodeSurprise: "decode-surprise",
		MissBoth:           "both",
		MissMode(9):        "MissMode(9)",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if !MissSpeculative.Speculative() || MissSpeculative.DecodeSurprise() {
		t.Error("MissSpeculative predicates wrong")
	}
	if MissDecodeSurprise.Speculative() || !MissDecodeSurprise.DecodeSurprise() {
		t.Error("MissDecodeSurprise predicates wrong")
	}
	if !MissBoth.Speculative() || !MissBoth.DecodeSurprise() {
		t.Error("MissBoth predicates wrong")
	}
}

func TestConfigValidateMissMode(t *testing.T) {
	bad := DefaultConfig()
	bad.MissMode = MissMode(7)
	if err := bad.Validate(); err == nil {
		t.Error("unknown miss mode accepted")
	}
	badTracker := DefaultConfig()
	badTracker.Tracker.Count = 0
	if err := badTracker.Validate(); err == nil {
		t.Error("invalid tracker accepted")
	}
	badBTB2 := DefaultConfig()
	badBTB2.BTB2.Rows = 5
	if err := badBTB2.Validate(); err == nil {
		t.Error("invalid BTB2 accepted")
	}
}

func TestAccessorSurface(t *testing.T) {
	h := New(testConfig())
	if h.Config().BTB1.Capacity() != testConfig().BTB1.Capacity() {
		t.Error("Config accessor wrong")
	}
	// Table stats accessors mirror the underlying counters.
	installBranch(h, takenBranch(0x1000, 0x2000), 0)
	h.Predict(0x1000, 100)
	if h.BTBPStats().Installs == 0 {
		t.Error("BTBP stats not surfaced")
	}
	if h.BTB1Stats().Installs == 0 {
		t.Error("BTB1 stats not surfaced")
	}
	if h.BTB2Stats().Installs == 0 {
		t.Error("BTB2 stats not surfaced")
	}
	if h.TrackerStats().BTB1Misses != 0 {
		t.Error("unexpected tracker activity")
	}
	h.ObserveComplete(0x1000) // steering live path
	if h.History() == nil {
		t.Error("nil history")
	}
}

func TestSequentialOrderFallback(t *testing.T) {
	// With steering disabled, the hierarchy uses the sequential orderer.
	cfg := testConfig()
	cfg.UseSteering = false
	h := New(cfg)
	br := takenBranch(0x40010, 0x40100)
	h.Resolve(br, nil, 0)
	// Evict from first level quickly by direct churn.
	for i := 1; i <= 8; i++ {
		f := takenBranch(br.Addr+zaddr.Addr(i*4096+512), 0x9000)
		installBranch(h, f, uint64(i*100))
		h.Predict(f.Addr, uint64(i*100+50))
	}
	h.ReportBTB1Miss(br.Addr, 100000)
	h.ReportICacheMiss(br.Addr, 100000)
	h.Advance(100200)
	if h.Stats().TransferReads == 0 {
		t.Error("sequential orderer produced no reads")
	}
	// The sequentialOrder helper itself returns a valid permutation.
	order := sequentialOrder{}.Order(0x40000 + 5*zaddr.SectorBytes)
	if len(order) != zaddr.SectorsPerBlock || order[0] != 5 {
		t.Errorf("sequential order wrong: %v", order[:3])
	}
}

func TestFITDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.FITEntries = 0
	h := New(cfg)
	if h.FITLookup(0x100, 0x200) {
		t.Error("disabled FIT hit")
	}
}

func TestInclusivePolicyVictimUpdate(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = Inclusive
	h := New(cfg)
	// Fill a BTB1 row and force a victim cascade: the inclusive policy
	// must update (or reinstall) the BTB2 copy.
	a := zaddr.Addr(0x1000)
	for i := 0; i < 3; i++ {
		addr := a + zaddr.Addr(i*512)
		installBranch(h, takenBranch(addr, addr+0x100), uint64(i*100))
		h.Predict(addr, uint64(i*100+50))
	}
	if _, _, in2 := h.Contains(a); !in2 {
		t.Error("inclusive policy lost the victim's BTB2 copy")
	}
	if h.Stats().BTB2Writes == 0 {
		t.Error("no BTB2 writes recorded")
	}
}

func TestInclusiveVictimReinstallsWhenAliased(t *testing.T) {
	// If the BTB2 copy was lost (evicted), the inclusive victim write
	// reinstalls it.
	cfg := testConfig()
	cfg.Policy = Inclusive
	cfg.BTB2 = btb.Config{Name: "BTB2", Rows: 64, Ways: 1, IndexHi: 53, IndexLo: 58}
	h := New(cfg)
	a := zaddr.Addr(0x1000)
	installBranch(h, takenBranch(a, a+0x100), 0)
	h.Predict(a, 100) // promote into BTB1
	// Overwrite its single-way BTB2 row with an alias.
	alias := a + 2048 // same BTB2 row (64 rows x 32B)
	h.Resolve(takenBranch(alias, 0x9000), nil, 200)
	if _, _, in2 := h.Contains(a); in2 {
		t.Fatal("setup: alias did not evict the BTB2 copy")
	}
	// Now force a to be evicted from BTB1: victims reinstall into BTB2.
	for i := 1; i <= 2; i++ {
		addr := a + zaddr.Addr(i*512)
		installBranch(h, takenBranch(addr, 0x9000), uint64(300*i))
		h.Predict(addr, uint64(300*i+50))
	}
	if _, _, in2 := h.Contains(a); !in2 {
		t.Error("inclusive victim write did not reinstall the lost copy")
	}
}

func TestPreloadBranchDuplicateDropped(t *testing.T) {
	h := New(testConfig())
	installBranch(h, takenBranch(0x1000, 0x2000), 0)
	n := h.Stats().PreloadInstalls
	h.PreloadBranch(0x1000, 0x2000, 4, 100) // already in BTBP
	if h.Stats().PreloadInstalls != n {
		t.Error("duplicate preload not dropped")
	}
}

func TestBypassBTBPInstallsDirect(t *testing.T) {
	cfg := testConfig()
	cfg.BypassBTBP = true
	h := New(cfg)
	br := takenBranch(0x1000, 0x2000)
	h.Resolve(br, nil, 0)
	h.Advance(100)
	in1, inP, _ := h.Contains(br.Addr)
	if !in1 {
		t.Error("bypass mode did not install into BTB1")
	}
	if inP {
		t.Error("bypass mode still wrote the BTBP")
	}
}

func TestResolveSurpriseNotTakenTrainsBHT(t *testing.T) {
	h := New(testConfig())
	cond := trace.Inst{Addr: 0x3000, Length: 4, Kind: trace.CondDirect,
		Taken: false, StaticTaken: true}
	// Before training, the static guess (taken) wins.
	if !h.SurpriseGuess(cond) {
		t.Fatal("static guess ignored")
	}
	h.Resolve(cond, nil, 0)
	// The surprise BHT learned not-taken; no entry was installed.
	if h.SurpriseGuess(cond) {
		t.Error("surprise BHT did not learn not-taken")
	}
	if in1, inP, in2 := h.Contains(cond.Addr); in1 || inP || in2 {
		t.Error("never-taken branch installed")
	}
}

func TestChaseRespectsRecentRing(t *testing.T) {
	cfg := testConfig()
	cfg.MultiBlockTransfer = true
	cfg.BTB2 = btb.Config{Name: "BTB2", Rows: 256, Ways: 4, IndexHi: 51, IndexLo: 58}
	h := New(cfg)
	// Install several branches in block A whose targets point into block
	// B (cross-block references), all in the BTB2.
	blockA := zaddr.Addr(0x40000)
	blockB := zaddr.Addr(0x42000)
	for i := 0; i < 4; i++ {
		br := takenBranch(blockA+zaddr.Addr(i*256), blockB+zaddr.Addr(i*64))
		h.Resolve(br, nil, 0)
	}
	// Evict them from the first level.
	for i := 1; i <= 10; i++ {
		f := takenBranch(blockA+zaddr.Addr(i*8192+512), 0x9000)
		installBranch(h, f, uint64(i*100))
		h.Predict(f.Addr, uint64(i*100+50))
	}
	// Trigger a full search of block A; the transfers reference block B
	// at least twice, so a chase should fire exactly once.
	h.ReportBTB1Miss(blockA, 100000)
	h.ReportICacheMiss(blockA, 100000)
	h.Advance(100400)
	first := h.Stats().ChainedSearches
	if first == 0 {
		t.Fatal("no chase fired")
	}
	// Re-transfer the same block: block B is in the recent ring, so no
	// second chase.
	h.ReportBTB1Miss(blockA+64, 200000)
	h.ReportICacheMiss(blockA+64, 200000)
	h.Advance(200400)
	if h.Stats().ChainedSearches != first {
		t.Error("chase repeated for a recently chased block")
	}
}
