package core

import (
	"strings"
	"testing"

	"bulkpreload/internal/zaddr"
)

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if strings.HasPrefix(k.String(), "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(99).String() != "EventKind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestEventString(t *testing.T) {
	withAux := Event{Cycle: 5, Kind: EvPredict, Addr: 0x100, Aux: 0x200}
	if !strings.Contains(withAux.String(), "->") {
		t.Error("aux target not rendered")
	}
	noAux := Event{Cycle: 5, Kind: EvMissReport, Addr: 0x100}
	if strings.Contains(noAux.String(), "->") {
		t.Error("spurious aux in rendering")
	}
	unknown := Event{Cycle: 1, Kind: EventKind(42), Addr: 0x100}
	if !strings.Contains(unknown.String(), "EventKind(42)") {
		t.Errorf("unknown kind rendered as %q", unknown.String())
	}
}

// TestEventLifecycle traces a full install -> predict -> promote ->
// evict -> transfer lifecycle and checks the event sequence.
func TestEventLifecycle(t *testing.T) {
	cfg := testConfig()
	h := New(cfg)
	tr := &CollectTracer{}
	h.SetTracer(tr)

	// Surprise install.
	br := takenBranch(0x40010, 0x40100)
	h.Resolve(br, nil, 0)
	if tr.Count(EvSurpriseInstall) != 1 {
		t.Fatalf("surprise installs = %d", tr.Count(EvSurpriseInstall))
	}
	// Predict from BTBP (after visibility) -> promotion event.
	h.Advance(100)
	if _, ok := h.Predict(br.Addr, 200); !ok {
		t.Fatal("prediction missing")
	}
	if tr.Count(EvPredict) != 1 || tr.Count(EvPromotion) != 1 {
		t.Fatalf("predict/promote = %d/%d", tr.Count(EvPredict), tr.Count(EvPromotion))
	}
	// Miss + icache reports and a bulk transfer.
	h.ReportBTB1Miss(0x40010, 300)
	h.ReportICacheMiss(0x40010, 300)
	h.Advance(600)
	if tr.Count(EvMissReport) != 1 || tr.Count(EvICacheReport) != 1 {
		t.Error("miss reports not traced")
	}
	// The branch is in BTB1 now; the transfer of its block hits its BTB2
	// copy (written at surprise install) but drops the duplicate — the
	// transfer-hit event still fires.
	if tr.Count(EvTransferHit) == 0 {
		t.Error("transfer hits not traced")
	}
	// Preload event.
	h.PreloadBranch(0x50000, 0x51000, 4, 700)
	if tr.Count(EvPreloadInstall) != 1 {
		t.Error("preload install not traced")
	}
	// Removing the tracer stops emission.
	h.SetTracer(nil)
	n := len(tr.Events)
	h.PreloadBranch(0x60000, 0x61000, 4, 800)
	if len(tr.Events) != n {
		t.Error("events emitted after tracer removed")
	}
}

func TestCollectTracerCap(t *testing.T) {
	tr := &CollectTracer{Max: 2}
	for i := 0; i < 5; i++ {
		tr.Event(Event{Kind: EvPredict})
	}
	if len(tr.Events) != 2 {
		t.Errorf("cap ignored: %d events", len(tr.Events))
	}
}

func TestCollectTracerRing(t *testing.T) {
	tr := &CollectTracer{Max: 3, Ring: true}
	for i := 0; i < 7; i++ {
		tr.Event(Event{Cycle: uint64(i), Kind: EvPredict})
	}
	if len(tr.Events) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(tr.Events))
	}
	ordered := tr.Ordered()
	for i, want := range []uint64{4, 5, 6} {
		if ordered[i].Cycle != want {
			t.Errorf("ordered[%d].Cycle = %d, want %d (last events, arrival order)",
				i, ordered[i].Cycle, want)
		}
	}
	// Before wrapping, Ordered is the identity.
	fresh := &CollectTracer{Max: 5, Ring: true}
	fresh.Event(Event{Cycle: 9})
	if got := fresh.Ordered(); len(got) != 1 || got[0].Cycle != 9 {
		t.Errorf("unwrapped ring Ordered = %v", got)
	}
}

func TestTeeTracer(t *testing.T) {
	a := &CollectTracer{}
	b := &CollectTracer{Max: 1}
	tee := TeeTracer{a, b}
	for i := 0; i < 3; i++ {
		tee.Event(Event{Cycle: uint64(i), Kind: EvPredict})
	}
	if len(a.Events) != 3 || len(b.Events) != 1 {
		t.Errorf("tee fan-out wrong: %d/%d events", len(a.Events), len(b.Events))
	}
}

func TestVictimEventOnCascade(t *testing.T) {
	h := New(testConfig())
	tr := &CollectTracer{}
	h.SetTracer(tr)
	// Fill one BTB1 row (2 ways in test config) and overflow it.
	for i := 0; i < 3; i++ {
		a := zaddr.Addr(0x1000 + i*512)
		in := takenBranch(a, a+0x100)
		h.Resolve(in, nil, uint64(i*100))
		h.Advance(uint64(i*100) + h.cfg.SurpriseInstallDelay)
		h.Predict(a, uint64(i*100)+50+h.cfg.SurpriseInstallDelay)
	}
	if tr.Count(EvVictim) == 0 {
		t.Error("victim cascade not traced")
	}
}
