package fault

import (
	"math"
	"reflect"
	"testing"

	"bulkpreload/internal/obs"
)

func TestNilInjectorIsSafeAndFree(t *testing.T) {
	var j *Injector
	if bits, ok := j.Strike(); ok || bits != 0 {
		t.Error("nil injector struck")
	}
	if j.Parity() {
		t.Error("nil injector reports parity")
	}
	j.NoteRecovered()
	j.NoteSilent()
	j.Reset()
	if j.Reads() != 0 || j.Name() != "" {
		t.Error("nil injector has state")
	}
	if s := j.Stats(); s != (Stats{}) {
		t.Errorf("nil injector stats = %+v", s)
	}
	if j.Sites() != nil {
		t.Error("nil injector has sites")
	}
}

func TestNewInjectorDisabledRate(t *testing.T) {
	if j := NewInjector("x", 0, Unprotected, 1, false); j != nil {
		t.Error("zero rate built an injector")
	}
	if j := NewInjector("x", -1, Unprotected, 1, false); j != nil {
		t.Error("negative rate built an injector")
	}
}

// collectStrikes drives n reads and returns the ordinals that struck.
func collectStrikes(j *Injector, n int) []uint64 {
	var hits []uint64
	for i := 0; i < n; i++ {
		if _, ok := j.Strike(); ok {
			hits = append(hits, j.Reads())
		}
	}
	return hits
}

func TestStrikeDeterministicAndResetReplays(t *testing.T) {
	const n = 500_000
	a := NewInjector("btb1", 50, Unprotected, 42, false)
	b := NewInjector("btb1", 50, Unprotected, 42, false)
	ha := collectStrikes(a, n)
	hb := collectStrikes(b, n)
	if len(ha) == 0 {
		t.Fatal("no strikes in 500k reads at 50/M")
	}
	if !reflect.DeepEqual(ha, hb) {
		t.Error("same seed/rate produced different strike schedules")
	}
	// Reset replays the identical stream.
	a.Reset()
	if a.Reads() != 0 || a.Stats() != (Stats{}) {
		t.Error("Reset did not clear state")
	}
	if hr := collectStrikes(a, n); !reflect.DeepEqual(ha, hr) {
		t.Error("post-Reset schedule differs from the original")
	}
	// A different seed strikes differently.
	c := NewInjector("btb1", 50, Unprotected, 43, false)
	if reflect.DeepEqual(ha, collectStrikes(c, n)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestStrikeRateMatchesGeometricSchedule(t *testing.T) {
	const (
		perM  = 200.0
		reads = 4_000_000
	)
	j := NewInjector("pht", perM, Unprotected, 7, false)
	hits := len(collectStrikes(j, reads))
	want := perM / 1e6 * reads
	// Geometric arrivals: the count concentrates tightly around the
	// mean; 25% slack is far beyond statistical noise at n=800.
	if math.Abs(float64(hits)-want) > 0.25*want {
		t.Errorf("observed %d strikes in %d reads, want about %.0f", hits, reads, want)
	}
	if j.Stats().Injected != int64(hits) {
		t.Errorf("injected counter %d != observed strikes %d", j.Stats().Injected, hits)
	}
}

func TestParityCountsRecoveriesAsDetections(t *testing.T) {
	j := NewInjector("btbp", 1000, Parity, 3, false)
	for i := 0; i < 100_000; i++ {
		if _, ok := j.Strike(); ok {
			j.NoteRecovered()
		}
	}
	s := j.Stats()
	if s.Injected == 0 {
		t.Fatal("no strikes")
	}
	if s.Detected != s.Recovered {
		t.Errorf("detected %d != recovered %d", s.Detected, s.Recovered)
	}
	if s.Detected != s.Injected {
		t.Errorf("parity detected %d of %d injected", s.Detected, s.Injected)
	}
	if s.Silent != 0 {
		t.Errorf("parity run counted %d silent faults", s.Silent)
	}
}

func TestRecordSites(t *testing.T) {
	j := NewInjector("ctb", 2000, Unprotected, 9, true)
	for i := 0; i < 50_000; i++ {
		if _, ok := j.Strike(); ok {
			j.NoteSilent()
		}
	}
	sites := j.Sites()
	if int64(len(sites)) != j.Stats().Injected {
		t.Fatalf("recorded %d sites for %d injections", len(sites), j.Stats().Injected)
	}
	for i := 1; i < len(sites); i++ {
		if sites[i].Read <= sites[i-1].Read {
			t.Fatal("sites not in read order")
		}
	}
}

func TestRegisterMetrics(t *testing.T) {
	j := NewInjector("btb1", 5000, Parity, 11, false)
	r := obs.NewRegistry()
	j.RegisterMetrics(r, "fault_btb1_")
	for i := 0; i < 10_000; i++ {
		if _, ok := j.Strike(); ok {
			j.NoteRecovered()
		}
	}
	snap := r.Snapshot(1)
	if got := snap.Counter("fault_btb1_injected_total"); got != j.Stats().Injected {
		t.Errorf("metric injected %d != stats %d", got, j.Stats().Injected)
	}
	if got := snap.Counter("fault_btb1_recovered_total"); got != j.Stats().Recovered {
		t.Errorf("metric recovered %d != stats %d", got, j.Stats().Recovered)
	}
}

func TestConfigValidate(t *testing.T) {
	good := ZEC12Rates(1, 10, Parity)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if !good.Enabled() {
		t.Error("configured rates not enabled")
	}
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	bad := Config{BTB1PerM: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	nan := Config{PHTPerM: math.NaN()}
	if err := nan.Validate(); err == nil {
		t.Error("NaN rate accepted")
	}
	prot := Config{Protection: Protection(9)}
	if err := prot.Validate(); err == nil {
		t.Error("unknown protection accepted")
	}
}

func TestZEC12RatesWeights(t *testing.T) {
	c := ZEC12Rates(5, 100, Unprotected)
	if c.BTB2PerM != 200 {
		t.Errorf("BTB2 weight = %v, want 2x base", c.BTB2PerM)
	}
	if c.BTBPPerM != 10 {
		t.Errorf("BTBP weight = %v, want base/10", c.BTBPPerM)
	}
	if c.BTB1PerM != 100 || c.PHTPerM != 100 || c.CTBPerM != 100 || c.SBHTPerM != 100 {
		t.Error("SRAM structures not at base rate")
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]string{}
	for _, name := range []string{"btb1", "btbp", "btb2", "pht", "ctb", "sbht"} {
		s := DeriveSeed(1, name)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %s and %s", name, prev)
		}
		seen[s] = name
		if DeriveSeed(1, name) != s {
			t.Errorf("%s: DeriveSeed not deterministic", name)
		}
		if DeriveSeed(2, name) == s {
			t.Errorf("%s: config seed ignored", name)
		}
	}
}
