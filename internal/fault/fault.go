// Package fault is a deterministic, seeded soft-error injection
// subsystem for the predictor arrays. The zEC12's prediction state lives
// in SRAM and register-file arrays whose contents are architecturally
// disposable: a wrong BTB/PHT/CTB entry may only ever cost performance
// (a misprediction and re-training), never correctness. This package
// exists to inject bit flips against that property and to model the two
// protection designs such arrays ship with:
//
//   - Unprotected: the flipped bits are written back into the array and
//     silently propagate into predictions until re-training overwrites
//     them.
//   - Parity: corruption is detected when the entry is read; recovery is
//     by invalidation — the entry is dropped, the read misses, and (for
//     the first-level BTBs) the semi-exclusive BTB2 can refetch the
//     branch through the normal bulk-transfer path.
//
// Fault arrival is event-driven and deterministic: each array read of a
// valid entry advances a per-structure counter, and a seeded xorshift
// generator draws geometric inter-arrival gaps at the configured rate
// (faults per million reads). Two runs with the same seed, rates, and
// workload therefore strike the same sites in the same order, which
// makes degradation studies bit-for-bit reproducible.
//
// The disabled path is free: structures hold a nil *Injector and skip
// every hook with one pointer comparison, allocating nothing.
package fault

import (
	"fmt"
	"math"

	"bulkpreload/internal/obs"
)

// Protection selects the array protection model.
type Protection uint8

const (
	// Unprotected arrays silently serve corrupted entries.
	Unprotected Protection = iota
	// Parity arrays detect corruption on read and recover by
	// invalidating the affected entry.
	Parity
)

// String implements fmt.Stringer.
func (p Protection) String() string {
	switch p {
	case Unprotected:
		return "unprotected"
	case Parity:
		return "parity"
	default:
		return fmt.Sprintf("Protection(%d)", uint8(p))
	}
}

// Config fixes the fault model for one hierarchy instance. The zero
// value disables injection entirely. Rates are expressed as faults per
// million entry reads of the structure; structure seeds are derived from
// Seed so that every array has an independent but reproducible arrival
// stream.
type Config struct {
	Seed       uint64
	Protection Protection

	// Per-structure susceptibility, faults per million entry reads.
	BTB1PerM float64
	BTBPPerM float64
	BTB2PerM float64
	PHTPerM  float64
	CTBPerM  float64
	SBHTPerM float64

	// RecordSites makes every injector keep an in-order log of its
	// strike sites (read ordinal + raw random bits), for reproducibility
	// tests and debugging. Off in normal runs: the log allocates.
	RecordSites bool
}

// Enabled reports whether any structure has a nonzero fault rate.
func (c Config) Enabled() bool {
	return c.BTB1PerM > 0 || c.BTBPPerM > 0 || c.BTB2PerM > 0 ||
		c.PHTPerM > 0 || c.CTBPerM > 0 || c.SBHTPerM > 0
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"BTB1PerM", c.BTB1PerM}, {"BTBPPerM", c.BTBPPerM}, {"BTB2PerM", c.BTB2PerM},
		{"PHTPerM", c.PHTPerM}, {"CTBPerM", c.CTBPerM}, {"SBHTPerM", c.SBHTPerM},
	} {
		if r.v < 0 || math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			return fmt.Errorf("fault: %s must be a non-negative finite rate, got %v", r.name, r.v)
		}
	}
	if c.Protection > Parity {
		return fmt.Errorf("fault: unknown protection %d", c.Protection)
	}
	return nil
}

// ZEC12Rates builds a Config from one base rate, weighted by array
// technology the way the zEC12's structures are built: the large SRAM
// arrays (BTB2 densest, then BTB1/PHT/CTB/surprise BHT) take the base
// rate or more, while the small register-file BTBP is an order of
// magnitude less susceptible. The weights are a modeling choice, not a
// measured FIT rate; see docs/ROBUSTNESS.md.
func ZEC12Rates(seed uint64, basePerM float64, p Protection) Config {
	return Config{
		Seed:       seed,
		Protection: p,
		BTB1PerM:   basePerM,
		BTBPPerM:   basePerM / 10, // register file
		BTB2PerM:   2 * basePerM,  // densest SRAM
		PHTPerM:    basePerM,
		CTBPerM:    basePerM,
		SBHTPerM:   basePerM,
	}
}

// DeriveSeed mixes a structure name into the config seed so each array
// gets an independent deterministic stream (FNV-1a over the name,
// finalized with a splitmix64 round).
func DeriveSeed(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := seed ^ h ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Site is one recorded fault strike: the ordinal of the read it struck
// and the raw random bits the structure used to pick what to flip.
type Site struct {
	Read uint64
	Bits uint64
}

// Stats is a point-in-time view of one injector's (or an aggregate's)
// counters.
type Stats struct {
	Injected  int64 // faults struck
	Detected  int64 // parity detections on read
	Recovered int64 // entries invalidated to recover
	Silent    int64 // corruptions applied without detection
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Injected += o.Injected
	s.Detected += o.Detected
	s.Recovered += o.Recovered
	s.Silent += o.Silent
}

// metrics is the injector's registry-backed counter set.
type metrics struct {
	injected  obs.Counter
	detected  obs.Counter
	recovered obs.Counter
	silent    obs.Counter
}

// Injector drives fault arrival for one array instance. All methods are
// safe on a nil receiver (a nil *Injector is the disabled state), so
// structures hold one pointer and pay a single comparison when faults
// are off.
type Injector struct {
	name       string
	protection Protection
	perM       float64
	seed       uint64 // initial seed, kept for Reset

	rng   uint64
	reads uint64 // valid-entry reads observed so far
	next  uint64 // read ordinal the next fault strikes at

	record bool
	sites  []Site

	met metrics
}

// NewInjector builds an injector for one structure. A rate of zero (or
// less) returns nil — the disabled state.
func NewInjector(name string, perM float64, p Protection, seed uint64, record bool) *Injector {
	if perM <= 0 {
		return nil
	}
	j := &Injector{name: name, protection: p, perM: perM, seed: seed, record: record}
	j.rearm()
	return j
}

// rearm restores the power-on arrival schedule. The seed is run through
// a splitmix64 round so that near-identical seeds still yield unrelated
// streams (a plain `seed | 1` would collapse even/odd seed pairs).
//
//zbp:hotpath
func (j *Injector) rearm() {
	z := j.seed ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // xorshift state must be nonzero
	}
	j.rng = z
	j.reads = 0
	j.next = 0
	j.sites = j.sites[:0]
	j.advance()
}

// rand steps the xorshift64* generator.
//
//zbp:hotpath
func (j *Injector) rand() uint64 {
	x := j.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	j.rng = x
	return x * 0x2545f4914f6cdd1d
}

// advance schedules the next strike a geometric gap away: inter-arrival
// for a per-read probability p, sampled by inversion from one uniform
// draw. Rates at or above one fault per read strike every read.
//
//zbp:hotpath
func (j *Injector) advance() {
	p := j.perM / 1e6
	if p >= 1 {
		j.next = j.reads + 1
		return
	}
	// u in (0,1): 53 uniform mantissa bits, offset so u is never 0.
	u := (float64(j.rand()>>11) + 0.5) / (1 << 53)
	gap := math.Floor(math.Log(u) / math.Log(1-p))
	if gap < 0 || math.IsNaN(gap) {
		gap = 0
	}
	const maxGap = math.MaxUint64 >> 8
	if gap > maxGap {
		gap = maxGap
	}
	j.next = j.reads + 1 + uint64(gap)
}

// Strike observes one read of a valid entry and reports whether a fault
// strikes it. On a strike it returns random bits the structure uses to
// pick which stored bit flips. Nil receivers never strike.
//
//zbp:hotpath
func (j *Injector) Strike() (bits uint64, ok bool) {
	if j == nil {
		return 0, false
	}
	j.reads++
	if j.reads < j.next {
		return 0, false
	}
	bits = j.rand()
	j.met.injected.Inc()
	if j.record {
		j.sites = append(j.sites, Site{Read: j.reads, Bits: bits})
	}
	j.advance()
	return bits, true
}

// Parity reports whether the injector models a parity-protected array.
//
//zbp:hotpath
func (j *Injector) Parity() bool { return j != nil && j.protection == Parity }

// NoteRecovered counts a parity detection and its recovery-by-
// invalidation. The structure calls it after dropping the entry, so
// detections and recoveries advance together.
//
//zbp:hotpath
func (j *Injector) NoteRecovered() {
	if j == nil {
		return
	}
	j.met.detected.Inc()
	j.met.recovered.Inc()
}

// NoteSilent counts an undetected corruption applied to the array.
//
//zbp:hotpath
func (j *Injector) NoteSilent() {
	if j == nil {
		return
	}
	j.met.silent.Inc()
}

// Name returns the structure name the injector was built for.
func (j *Injector) Name() string {
	if j == nil {
		return ""
	}
	return j.name
}

// Reads returns how many valid-entry reads the injector has observed.
func (j *Injector) Reads() uint64 {
	if j == nil {
		return 0
	}
	return j.reads
}

// Stats returns a view of the counters.
func (j *Injector) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	return Stats{
		Injected:  j.met.injected.Value(),
		Detected:  j.met.detected.Value(),
		Recovered: j.met.recovered.Value(),
		Silent:    j.met.silent.Value(),
	}
}

// Sites returns the recorded strike log (nil unless RecordSites). The
// slice is shared; callers must not mutate it.
func (j *Injector) Sites() []Site {
	if j == nil {
		return nil
	}
	return j.sites
}

// Reset restores the injector to its power-on state: counters cleared
// and the arrival schedule re-derived from the original seed, so a
// Reset structure replays the identical fault stream.
func (j *Injector) Reset() {
	if j == nil {
		return
	}
	j.met = metrics{}
	j.rearm()
}

// RegisterMetrics enumerates the injector's counters into r under the
// given prefix, e.g. "fault_btb1_".
func (j *Injector) RegisterMetrics(r *obs.Registry, prefix string) {
	if j == nil {
		return
	}
	r.Counter(prefix+"injected_total", "faults", "bit flips struck on entry reads", &j.met.injected)
	r.Counter(prefix+"detected_total", "faults", "corruptions detected by parity on read", &j.met.detected)
	r.Counter(prefix+"recovered_total", "entries", "entries invalidated to recover from a detected fault", &j.met.recovered)
	r.Counter(prefix+"silent_total", "faults", "corruptions applied without detection", &j.met.silent)
}
