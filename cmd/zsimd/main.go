// Command zsimd is the crash-safe simulation service daemon: an
// HTTP/JSON API over a persistent, journaled job queue executing
// sim.Spec jobs on a worker pool with admission control, per-job
// deadlines, retry/dead-letter policy, and checkpoint/resume across
// both graceful SIGTERM drains and kill -9.
//
// Usage:
//
//	zsimd -dir /var/lib/zsimd -addr :8080
//	zsimd -dir state -addr :8080 -workers 4 -deadline 10m
//	zsimd -selftest                       # run the fault-injecting testbed
//	zsimd -selftest -scenario kill9       # one scenario
//	zsimd -selftest -list                 # list scenarios
//
// API:
//
//	POST /v1/jobs        {"tenant":"t","spec":{...sim.Spec...}} -> 202 job,
//	                     429 + Retry-After when shed, 503 while draining
//	GET  /v1/jobs        queue listing with depth
//	GET  /v1/jobs/{id}   job status; result JSON once done
//	GET  /healthz        200 serving / 503 draining
//	GET  /metrics        Prometheus text (service + per-tenant)
//	GET  /snapshot       raw obs snapshot JSON
//	GET  /debug/vars     expvar
//
// On SIGTERM/SIGINT the daemon stops admitting, drains in-flight jobs
// up to -drain, checkpoints whatever is still running at its exact
// record boundary, and exits; the next start resumes from the journal.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulkpreload/internal/jobq"
	"bulkpreload/internal/loadtest"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zsimd"
)

func main() {
	var (
		dir         = flag.String("dir", "zsimd-state", "persistent state directory (journal + checkpoints)")
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file after listening (for :0 and tooling)")
		workers     = flag.Int("workers", 2, "simulation worker pool size")
		maxDepth    = flag.Int("max-depth", 64, "pending-backlog bound; submissions beyond it get 429")
		maxAttempts = flag.Int("max-attempts", 3, "dead-letter a job after this many failed attempts")
		deadline    = flag.Duration("deadline", 0, "per-attempt wall-time bound (0 = unbounded)")
		ckptEvery   = flag.Int64("checkpoint-every", 200_000, "instructions between durable job checkpoints (<0 disables interval checkpoints)")
		drain       = flag.Duration("drain", 10*time.Second, "how long SIGTERM lets in-flight jobs finish before checkpoint-and-release")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant admission rate limit in jobs/sec (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 8, "per-tenant admission burst size")
		retryBase   = flag.Duration("retry-base", jobq.DefaultBackoff.Base, "retry backoff after the first failure")
		retryCap    = flag.Duration("retry-cap", jobq.DefaultBackoff.Cap, "upper bound on any retry backoff")

		selftest = flag.Bool("selftest", false, "run the fault-injecting load testbed against this binary and exit")
		scenario = flag.String("scenario", "", "with -selftest: run only scenarios whose name contains this")
		seed     = flag.Uint64("seed", 1, "with -selftest: deterministic scenario seed")
		list     = flag.Bool("list", false, "with -selftest: list scenario names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range loadtest.Names() {
			fmt.Println(n)
		}
		return
	}
	if *selftest {
		os.Exit(runSelftest(*scenario, *seed))
	}

	cfg := zsimd.Config{
		Dir:                *dir,
		Workers:            *workers,
		MaxQueueDepth:      *maxDepth,
		MaxAttempts:        *maxAttempts,
		JobDeadline:        *deadline,
		CheckpointInterval: *ckptEvery,
		DrainTimeout:       *drain,
		TenantRate:         *tenantRate,
		TenantBurst:        *tenantBurst,
		Retry:              jobq.Backoff{Base: *retryBase, Cap: *retryCap},
	}
	os.Exit(runDaemon(cfg, *addr, *addrFile))
}

func runDaemon(cfg zsimd.Config, addr, addrFile string) int {
	logger := log.New(os.Stderr, "zsimd: ", log.LstdFlags)
	svc, err := zsimd.New(cfg)
	if err != nil {
		logger.Print(err)
		return 1
	}
	rec := svc.Recovery()
	if rec.Replayed > 0 || rec.Damage != nil {
		logger.Printf("recovered %d jobs (%d requeued from crash), journal damage: %v",
			rec.Replayed, len(rec.Requeued), rec.Damage)
	}

	srv := obs.NewHandlerServer(svc.Handler())
	bound, err := srv.Start(addr)
	if err != nil {
		logger.Print(err)
		return 1
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Printf("writing -addr-file: %v", err)
			return 1
		}
	}
	logger.Printf("listening on %s (dir %s, %d workers)", bound, cfg.Dir, cfg.Workers)
	svc.Start()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	logger.Printf("%s: draining (up to %v)", sig, cfg.DrainTimeout)

	// Stop taking connections first, then drain the workers; both are
	// bounded, so a second signal is never needed to get out.
	if err := srv.Shutdown(5 * time.Second); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	shutdownCtx, cancel := signalContext(sigs)
	defer cancel()
	if err := svc.Shutdown(shutdownCtx); err != nil {
		logger.Printf("drain: %v", err)
		return 1
	}
	logger.Print("drained; state persisted")
	return 0
}

// signalContext returns a context canceled by the next signal on sigs:
// an operator's second ^C cuts the drain short instead of being
// swallowed.
func signalContext(sigs <-chan os.Signal) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		select {
		case <-sigs:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

func runSelftest(filter string, seed uint64) int {
	bin, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsimd: cannot locate own binary for subprocess scenarios:", err)
		bin = ""
	}
	outs := loadtest.Run(loadtest.Options{
		Bin:    bin,
		Filter: filter,
		Seed:   seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	failed := 0
	for _, o := range outs {
		switch {
		case o.Skipped:
			fmt.Printf("SKIP %s\n", o.Name)
		case o.Err != nil:
			fmt.Printf("FAIL %s (%v): %v\n", o.Name, o.Dur.Round(time.Millisecond), o.Err)
			failed++
		default:
			fmt.Printf("ok   %s (%v)\n", o.Name, o.Dur.Round(time.Millisecond))
		}
	}
	if failed > 0 || len(outs) == 0 {
		fmt.Printf("selftest: %d/%d scenarios failed\n", failed, len(outs))
		return 1
	}
	fmt.Printf("selftest: %d scenarios passed\n", len(outs))
	return 0
}
