// Command zsim runs one branch-prediction configuration over one
// workload and prints the detailed result: CPI, the Figure 4 outcome
// breakdown, and per-structure statistics.
//
// Usage:
//
//	zsim -trace zos-daytrader-dbserv -config btb2 -insts 1000000
//	zsim -file trace.zbpt -config no-btb2
//	zsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/report"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

func main() {
	var (
		traceName = flag.String("trace", "zos-daytrader-dbserv", "Table 4 workload name (see -list)")
		file      = flag.String("file", "", "ZBPT trace file (overrides -trace)")
		config    = flag.String("config", "btb2", "configuration: no-btb2, btb2, large-btb1")
		insts     = flag.Int("insts", workload.DefaultInstructions, "dynamic instructions to simulate")
		warmup    = flag.Int64("warmup", 100_000, "instructions excluded from reported counts")
		hardware  = flag.Bool("hardware", false, "hardware mode: finite L2 instruction cache")
		events    = flag.Int("events", 0, "print the first N hierarchy events (0 = off)")
		timeline  = flag.Int("timeline", 0, "render the bulk-preload timeline of the first N 4KB blocks (0 = off)")
		compare   = flag.Bool("compare", false, "run all three Table 3 configurations and print the comparison")
		specFile  = flag.String("spec", "", "run a JSON experiment spec (overrides other flags)")
		list      = flag.Bool("list", false, "list Table 4 workload names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	if *specFile != "" {
		spec, err := sim.LoadSpec(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		r, err := spec.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		report.Result(os.Stdout, r)
		return
	}

	cfgs := sim.Table3()
	if _, ok := cfgs[*config]; !ok {
		fmt.Fprintf(os.Stderr, "zsim: unknown configuration %q (want %s)\n",
			*config, strings.Join([]string{sim.ConfigNoBTB2, sim.ConfigBTB2, sim.ConfigLargeL1}, ", "))
		os.Exit(2)
	}

	src, err := loadSource(*file, *traceName, *insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsim:", err)
		os.Exit(1)
	}

	if *compare {
		params := engine.DefaultParams()
		if *hardware {
			params = engine.HardwareParams()
		}
		params.WarmupInstructions = *warmup
		c := sim.Compare(src, params)
		fmt.Println(c)
		fmt.Printf("  CPI: %s %.4f | %s %.4f | %s %.4f\n",
			sim.ConfigNoBTB2, c.Base.CPI(), sim.ConfigBTB2, c.BTB2.CPI(),
			sim.ConfigLargeL1, c.LargeBTB1.CPI())
		return
	}

	params := engine.DefaultParams()
	if *hardware {
		params = engine.HardwareParams()
	}
	params.WarmupInstructions = *warmup
	var tracer *core.CollectTracer
	if *events > 0 || *timeline > 0 {
		max := *events
		if *timeline > 0 {
			// Timeline stories need a deep event window.
			max = 200_000
		}
		tracer = &core.CollectTracer{Max: max}
		params.EventTracer = tracer
	}

	r := engine.Run(src, cfgs[*config], params, *config)
	report.Result(os.Stdout, r)
	if tracer != nil && *events > 0 {
		n := *events
		if n > len(tracer.Events) {
			n = len(tracer.Events)
		}
		fmt.Printf("first %d hierarchy events:\n", n)
		for _, ev := range tracer.Events[:n] {
			fmt.Println(" ", ev)
		}
	}
	if tracer != nil && *timeline > 0 {
		report.TransferTimeline(os.Stdout, tracer.Events, *timeline)
	}
}

func loadSource(file, traceName string, insts int) (trace.Source, error) {
	if file != "" {
		return trace.ReadFile(file)
	}
	p, err := workload.ByName(traceName, insts)
	if err != nil {
		return nil, fmt.Errorf("%v (use -list for names)", err)
	}
	return workload.New(p), nil
}
