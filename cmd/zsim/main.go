// Command zsim runs one branch-prediction configuration over one
// workload and prints the detailed result: CPI, the Figure 4 outcome
// breakdown, and per-structure statistics.
//
// Usage:
//
//	zsim -trace zos-daytrader-dbserv -config btb2 -insts 1000000
//	zsim -file trace.zbpt -config no-btb2
//	zsim -config btb2 -interval 100000                # phase timeline
//	zsim -config btb2 -jsonl events.jsonl             # streaming trace
//	zsim -config btb2 -chrome trace.json              # Perfetto trace
//	zsim -config btb2 -metrics-addr localhost:9090    # live /metrics
//	zsim -config btb2 -fault-rate 10 -fault-protect parity   # soft errors
//	zsim -config btb2 -checkpoint run.ckpt -checkpoint-every 500000
//	zsim -config btb2 -resume run.ckpt                # continue after a crash
//	zsim -file damaged.zbpt -salvage                  # use the valid prefix
//	zsim -file huge.zbpt -stream                      # constant-memory decode
//	zsim -config btb2 -batch                          # batched zero-alloc pipeline
//	zsim -compare -workers 0                          # fan configs across cores
//	zsim -batch -spans spans.json                     # hierarchical span trace (Perfetto)
//	zsim -metrics-addr :9090 -pprof                   # live pprof + runtime metrics
//	zsim -perfstat gate                               # benchmark regression gate
//	zsim -list
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/obs/export"
	"bulkpreload/internal/obs/span"
	"bulkpreload/internal/report"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

func main() {
	var (
		traceName = flag.String("trace", "zos-daytrader-dbserv", "Table 4 workload name (see -list)")
		file      = flag.String("file", "", "ZBPT trace file (overrides -trace)")
		config    = flag.String("config", "btb2", "configuration: no-btb2, btb2, large-btb1")
		insts     = flag.Int("insts", workload.DefaultInstructions, "dynamic instructions to simulate")
		warmup    = flag.Int64("warmup", 100_000, "instructions excluded from reported counts")
		hardware  = flag.Bool("hardware", false, "hardware mode: finite L2 instruction cache")
		events    = flag.Int("events", 0, "print the first N hierarchy events (0 = off)")
		timeline  = flag.Int("timeline", 0, "render the bulk-preload timeline of the last N 4KB blocks (0 = off)")
		interval  = flag.Int64("interval", 0, "snapshot the metric registry every N instructions and render the phase timeline (0 = off)")
		jsonlPath = flag.String("jsonl", "", "stream every hierarchy event to this file as JSON Lines")
		chromePtr = flag.String("chrome", "", "stream every hierarchy event to this file in Chrome trace_event format (load in Perfetto)")
		metrics   = flag.String("metrics-addr", "", "serve live registry state over HTTP at this address (/metrics, /snapshot, /debug/vars)")
		compare   = flag.Bool("compare", false, "run all three Table 3 configurations and print the comparison")
		specFile  = flag.String("spec", "", "run a JSON experiment spec (overrides other flags)")
		list      = flag.Bool("list", false, "list Table 4 workload names and exit")

		faultRate    = flag.Float64("fault-rate", 0, "inject soft errors at this base rate (faults per million entry reads; 0 = off)")
		faultProtect = flag.String("fault-protect", "unprotected", "array protection model: unprotected, parity")
		faultSeed    = flag.Uint64("fault-seed", 1, "seed for the deterministic fault-arrival streams")

		ckptPath  = flag.String("checkpoint", "", "persist periodic checkpoints to this file (atomic replace)")
		ckptEvery = flag.Int64("checkpoint-every", 1_000_000, "instructions between checkpoints (with -checkpoint)")
		resume    = flag.String("resume", "", "resume the simulation from this checkpoint file")
		salvage   = flag.Bool("salvage", false, "with -file: tolerate a truncated/corrupt trace tail, simulating the valid prefix")

		workers = flag.Int("workers", 1, "with -compare: fan the three configurations across this many workers (0 = GOMAXPROCS)")
		batched = flag.Bool("batch", false, "drive the engine through the batched zero-alloc pipeline (bit-identical results; ignored with -resume)")
		stream  = flag.Bool("stream", false, "with -file: stream the trace from disk through the bulk batch decoder in constant memory (tolerates a damaged tail like -salvage)")

		spansPath = flag.String("spans", "", "write a hierarchical span trace (study/worker/unit/phase/batch, steal instants) to this file: .jsonl = JSON Lines, anything else = Chrome trace_event for Perfetto; routes the run through the batched scheduler")
		pprofFlag = flag.Bool("pprof", false, "with -metrics-addr: also expose net/http/pprof profiles and /debug/runtime (runtime/metrics as JSON)")

		perfstatMode   = flag.String("perfstat", "", "benchmark-trajectory mode: run (print one entry as JSON), gate (compare against the trajectory baseline, exit 1 on regression), append (measure and append to the trajectory)")
		perfstatFile   = flag.String("perfstat-file", "BENCH_parallel.json", "trajectory file read by -perfstat gate and written by -perfstat append")
		perfstatOut    = flag.String("perfstat-out", "", "also write the freshly measured entry as JSON to this file (any -perfstat mode)")
		perfstatRuns   = flag.Int("perfstat-runs", 3, "median-of-N repetitions per -perfstat invocation")
		perfstatThresh = flag.Float64("perfstat-threshold", 0.15, "with -perfstat gate: max fractional drop in throughput metrics before the gate fails")
		perfstatLabel  = flag.String("perfstat-label", "", "with -perfstat run/append: free-form label recorded in the entry (e.g. a PR number)")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	if *perfstatMode != "" {
		// -workers defaults to 1 for -compare; perfstat wants GOMAXPROCS
		// unless the user explicitly asked for a worker count.
		pw := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				pw = *workers
			}
		})
		os.Exit(runPerfstat(perfstatConfig{
			mode:      *perfstatMode,
			file:      *perfstatFile,
			out:       *perfstatOut,
			runs:      *perfstatRuns,
			threshold: *perfstatThresh,
			label:     *perfstatLabel,
			workers:   pw,
		}))
	}

	if *specFile != "" {
		spec, err := sim.LoadSpec(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		r, err := spec.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		report.Result(os.Stdout, r)
		return
	}

	cfgs := sim.Table3()
	if _, ok := cfgs[*config]; !ok {
		fmt.Fprintf(os.Stderr, "zsim: unknown configuration %q (want %s)\n",
			*config, strings.Join([]string{sim.ConfigNoBTB2, sim.ConfigBTB2, sim.ConfigLargeL1}, ", "))
		os.Exit(2)
	}

	if *interval < 0 {
		fmt.Fprintln(os.Stderr, "zsim: -interval must be non-negative")
		os.Exit(2)
	}

	if *stream && *file == "" {
		fmt.Fprintln(os.Stderr, "zsim: -stream requires -file")
		os.Exit(2)
	}

	if *pprofFlag && *metrics == "" {
		fmt.Fprintln(os.Stderr, "zsim: -pprof requires -metrics-addr")
		os.Exit(2)
	}

	if *spansPath != "" && *resume != "" {
		fmt.Fprintln(os.Stderr, "zsim: -spans is incompatible with -resume (the traced scheduler starts units from instruction zero)")
		os.Exit(2)
	}

	src, err := loadSource(*file, *traceName, *insts, *salvage, *stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsim:", err)
		os.Exit(1)
	}
	// A streamed source holds the file open for the whole run; a damaged
	// tail surfaces after the pass, like -salvage.
	defer func() {
		if fs, ok := src.(*trace.FileSource); ok {
			if derr := fs.Err(); derr != nil {
				fmt.Fprintln(os.Stderr, "zsim: stream salvage:", derr)
			}
			if cerr := fs.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "zsim: stream close:", cerr)
			}
		}
	}()

	if *compare {
		params := engine.DefaultParams()
		if *hardware {
			params = engine.HardwareParams()
		}
		params.WarmupInstructions = *warmup
		var spanTrace *span.Trace
		if *spansPath != "" {
			spanTrace = span.NewTrace()
		}
		c := compareConfigs(src, params, *workers, spanTrace)
		fmt.Println(c)
		fmt.Printf("  CPI: %s %.4f | %s %.4f | %s %.4f\n",
			sim.ConfigNoBTB2, c.Base.CPI(), sim.ConfigBTB2, c.BTB2.CPI(),
			sim.ConfigLargeL1, c.LargeBTB1.CPI())
		if spanTrace != nil {
			if err := writeSpans(*spansPath, spanTrace); err != nil {
				fmt.Fprintln(os.Stderr, "zsim:", err)
				os.Exit(1)
			}
			fmt.Printf("spans: wrote %d events to %s\n", spanTrace.Len(), *spansPath)
		}
		return
	}

	params := engine.DefaultParams()
	if *hardware {
		params = engine.HardwareParams()
	}
	params.WarmupInstructions = *warmup

	// Soft-error injection.
	if *faultRate > 0 {
		var prot fault.Protection
		switch *faultProtect {
		case "unprotected":
			prot = fault.Unprotected
		case "parity":
			prot = fault.Parity
		default:
			fmt.Fprintf(os.Stderr, "zsim: unknown -fault-protect %q (want unprotected, parity)\n", *faultProtect)
			os.Exit(2)
		}
		params.Fault = fault.ZEC12Rates(*faultSeed, *faultRate, prot)
	}

	// Periodic checkpoints, atomically replaced so a crash mid-write
	// keeps the previous good one.
	if *ckptPath != "" {
		if *ckptEvery <= 0 {
			fmt.Fprintln(os.Stderr, "zsim: -checkpoint-every must be positive")
			os.Exit(2)
		}
		params.CheckpointInterval = *ckptEvery
		params.CheckpointSink = func(ck *engine.Checkpoint) {
			if err := engine.WriteCheckpointFile(*ckptPath, ck); err != nil {
				fmt.Fprintln(os.Stderr, "zsim: checkpoint:", err)
			}
		}
	}

	// Compose the event tracer pipeline: an in-memory buffer for -events
	// and -timeline, plus streaming exporters, all fed through one tee.
	var (
		tracers   core.TeeTracer
		collector *core.CollectTracer
		jsonl     *export.JSONL
		chrome    *export.Chrome
	)
	if *events > 0 || *timeline > 0 {
		max := *events
		if *timeline > 0 {
			// Timeline stories need a deep event window; ring mode keeps
			// the *last* window so long runs show steady state, not warm-up.
			max = 200_000
		}
		collector = &core.CollectTracer{Max: max, Ring: *timeline > 0}
		tracers = append(tracers, collector)
	}
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		jsonl = export.NewJSONL(f)
		tracers = append(tracers, jsonl)
	}
	if *chromePtr != "" {
		f, err := os.Create(*chromePtr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		chrome = export.NewChrome(f)
		tracers = append(tracers, chrome)
	}
	switch len(tracers) {
	case 0:
	case 1:
		params.EventTracer = tracers[0]
	default:
		params.EventTracer = tracers
	}

	// Live introspection: snapshots published to an atomic pointer, read
	// by the HTTP handlers — the simulation goroutine never shares its
	// metrics directly.
	params.SnapshotInterval = *interval
	var (
		live   *obs.Live
		server *obs.Server
	)
	if *metrics != "" {
		live = &obs.Live{}
		expvar.Publish("zsim", live.Var())
		if params.SnapshotInterval == 0 {
			params.SnapshotInterval = 100_000
		}
		params.SnapshotSink = live.Publish
		server = obs.NewServer(live)
		if *pprofFlag {
			server.EnableProfiling()
		}
		addr, err := server.Start(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		fmt.Printf("serving live metrics on http://%s/metrics\n", addr)
		if *pprofFlag {
			fmt.Printf("serving profiles on http://%s/debug/pprof/ and runtime metrics on http://%s/debug/runtime\n", addr, addr)
		}
	}

	var r engine.Result
	var spanTrace *span.Trace
	eng := engine.New(cfgs[*config], params)
	if *resume != "" {
		ck, err := engine.ReadCheckpointFile(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		fmt.Printf("resuming %s from %d instructions\n", ck.Trace, ck.Instructions)
		r, err = eng.Resume(src, ck)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
	} else if *spansPath != "" {
		// Route the run through the traced batched scheduler: the span
		// tree covers scheduling, the engine phases and batches, and (with
		// -stream) the decoder refills. Results stay bit-identical to the
		// untraced pipeline — the sim package's differential gate pins it.
		spanTrace = span.NewTrace()
		unit := sim.Unit{
			Label:      src.Name() + "/" + *config,
			NewSource:  func() trace.Source { return src },
			Config:     cfgs[*config],
			Params:     params,
			ConfigName: *config,
		}
		res, _, err := sim.RunUnitsTraced(context.Background(), 1, []sim.Unit{unit}, spanTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		r = res[0]
	} else if *batched {
		r = eng.RunBatched(src, *config)
	} else {
		r = eng.Run(src, *config)
	}
	report.Result(os.Stdout, r)
	if r.Fault.Injected > 0 || r.Fault.Detected > 0 {
		fmt.Printf("  faults             injected %d, detected %d, recovered %d, silent %d\n",
			r.Fault.Injected, r.Fault.Detected, r.Fault.Recovered, r.Fault.Silent)
	}
	if live != nil && r.Metrics != nil {
		live.Publish(*r.Metrics)
	}
	if server != nil {
		// The simulation is done: let in-flight scrapes finish, then
		// release the listener.
		if err := server.Shutdown(5 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "zsim: metrics server shutdown:", err)
		}
	}
	if *interval > 0 {
		fmt.Println()
		report.PhaseTimeline(os.Stdout, r.Snapshots)
	}
	if collector != nil && *events > 0 {
		ordered := collector.Ordered()
		n := *events
		if n > len(ordered) {
			n = len(ordered)
		}
		fmt.Printf("first %d hierarchy events:\n", n)
		for _, ev := range ordered[:n] {
			fmt.Println(" ", ev)
		}
	}
	if collector != nil && *timeline > 0 {
		report.TransferTimeline(os.Stdout, collector.Ordered(), *timeline)
	}
	if jsonl != nil {
		if err := jsonl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "zsim: jsonl export:", err)
			os.Exit(1)
		}
		reconcile("jsonl", jsonl.Counts(), r.Metrics)
	}
	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "zsim: chrome export:", err)
			os.Exit(1)
		}
	}
	if spanTrace != nil {
		if err := writeSpans(*spansPath, spanTrace); err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		fmt.Printf("spans: wrote %d events to %s\n", spanTrace.Len(), *spansPath)
	}
}

// reconcile cross-checks exported per-kind event counts against the
// final registry counters — the two observability planes (streaming
// trace, metrics registry) must agree event for event.
func reconcile(what string, counts [core.NumEventKinds]int64, final *obs.Snapshot) {
	if final == nil {
		return
	}
	for k := 0; k < core.NumEventKinds; k++ {
		kind := core.EventKind(k)
		if got, want := counts[k], final.Counter(kind.MetricName()); got != want {
			fmt.Fprintf(os.Stderr, "zsim: %s export disagrees with registry for %s: %d events vs counter %d\n",
				what, kind, got, want)
		}
	}
}

// compareConfigs runs the three Table 3 configurations. workers == 1
// without tracing uses the serial path directly on src; any other
// combination materializes the trace once and fans the three runs
// across the work-stealing scheduler (bit-identical results either way
// — the differential gate in internal/sim pins that). A non-nil tr
// collects the span hierarchy of the scheduled runs.
func compareConfigs(src trace.Source, params engine.Params, workers int, tr *span.Trace) sim.Comparison {
	if workers == 1 && tr == nil {
		return sim.Compare(src, params)
	}
	name := src.Name()
	ins := trace.Collect(src)
	unit := func(cfg core.Config, cfgName string) sim.Unit {
		return sim.Unit{
			Label:      name + "/" + cfgName,
			NewSource:  func() trace.Source { return trace.NewSliceSource(name, ins) },
			Config:     cfg,
			Params:     params,
			ConfigName: cfgName,
		}
	}
	units := []sim.Unit{
		unit(core.OneLevelConfig(), sim.ConfigNoBTB2),
		unit(core.DefaultConfig(), sim.ConfigBTB2),
		unit(core.LargeOneLevelConfig(), sim.ConfigLargeL1),
	}
	res, _, err := sim.RunUnitsTraced(context.Background(), workers, units, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsim:", err)
		os.Exit(1)
	}
	return sim.Comparison{Trace: name, Base: res[0], BTB2: res[1], LargeBTB1: res[2]}
}

func loadSource(file, traceName string, insts int, salvage, stream bool) (trace.Source, error) {
	if file != "" {
		if stream {
			return trace.OpenFileSource(file, trace.DefaultBatchCapacity)
		}
		if salvage {
			src, diag, err := trace.ReadFileTolerant(file)
			if err != nil {
				return nil, err
			}
			if diag != nil {
				fmt.Fprintln(os.Stderr, "zsim: salvage:", diag)
			}
			return src, nil
		}
		return trace.ReadFile(file)
	}
	p, err := workload.ByName(traceName, insts)
	if err != nil {
		return nil, fmt.Errorf("%v (use -list for names)", err)
	}
	return workload.New(p), nil
}
