package main

// The -perfstat modes drive the benchmark-trajectory subsystem from the
// command line and CI:
//
//	zsim -perfstat run                      measure and print one entry
//	zsim -perfstat gate                     measure, compare to the trajectory
//	                                        baseline, exit 1 on regression
//	zsim -perfstat append -perfstat-label "PR 7"
//	                                        measure and append to the trajectory
//
// The gate compares throughput only against the most recent trajectory
// entry recorded at the same GOMAXPROCS; correctness metrics
// (differential mismatches, decoder allocations) are pinned at zero
// regardless.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"bulkpreload/internal/obs/perfstat"
)

type perfstatConfig struct {
	mode      string  // run | gate | append
	file      string  // trajectory path for gate/append
	out       string  // optional path for the measured entry JSON
	runs      int     // median-of-N
	threshold float64 // max fractional throughput drop for gate
	label     string  // recorded in the entry for run/append
	workers   int     // scheduler workers; 0 = GOMAXPROCS
}

func runPerfstat(cfg perfstatConfig) int {
	switch cfg.mode {
	case "run", "gate", "append":
	default:
		fmt.Fprintf(os.Stderr, "zsim: unknown -perfstat mode %q (want run, gate, append)\n", cfg.mode)
		return 2
	}
	fmt.Fprintf(os.Stderr, "perfstat: measuring %d scenarios, median of %d run(s)\n",
		len(perfstat.Scenarios()), cfg.runs)
	entry, err := perfstat.Run(context.Background(), perfstat.Options{
		Workers: cfg.workers,
		Runs:    cfg.runs,
		Label:   cfg.label,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsim:", err)
		return 1
	}
	printEntrySummary(os.Stderr, entry)
	if cfg.out != "" {
		out, err := json.MarshalIndent(entry, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			return 1
		}
		if err := os.WriteFile(cfg.out, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			return 1
		}
	}

	switch cfg.mode {
	case "run":
		out, err := json.MarshalIndent(entry, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			return 1
		}
		fmt.Println(string(out))
		return 0

	case "gate":
		traj, err := perfstat.LoadTrajectory(cfg.file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			return 1
		}
		baseline := traj.Baseline(entry.GOMAXPROCS)
		if baseline == nil {
			fmt.Fprintf(os.Stderr, "perfstat: no baseline in %s at GOMAXPROCS=%d; gating correctness metrics only\n",
				cfg.file, entry.GOMAXPROCS)
		} else {
			fmt.Fprintf(os.Stderr, "perfstat: baseline %q (%s), threshold %.0f%%\n",
				baseline.Label, baseline.GeneratedAt, 100*cfg.threshold)
		}
		regs := perfstat.Compare(baseline, entry, cfg.threshold)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "perfstat: REGRESSION:", r)
			}
			return 1
		}
		fmt.Fprintln(os.Stderr, "perfstat: gate passed")
		return 0

	default: // append
		// Refuse to record a diverged or allocating entry as a baseline:
		// a nil-baseline Compare checks exactly the correctness metrics.
		if regs := perfstat.Compare(nil, entry, cfg.threshold); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "perfstat: refusing to append:", r)
			}
			return 1
		}
		traj, err := perfstat.LoadTrajectory(cfg.file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			return 1
		}
		traj.Append(entry)
		if err := traj.Write(cfg.file); err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "perfstat: appended entry %d to %s\n", len(traj.Entries), cfg.file)
		return 0
	}
}

// printEntrySummary renders the entry's headline numbers for humans;
// the JSON carries the full detail.
func printEntrySummary(w *os.File, e perfstat.Entry) {
	fmt.Fprintf(w, "perfstat: GOMAXPROCS=%d workers=%d runs=%d\n", e.GOMAXPROCS, e.Workers, e.Runs)
	if s := e.Scenario(perfstat.ScenarioCapacitySweep); s != nil {
		fmt.Fprintf(w, "perfstat: %s: %d units, %d records, serial %.0f rec/s, parallel %.0f rec/s (%.2fx, %.0f steals, %d mismatches)\n",
			s.Name, s.Units, s.Records,
			s.Metric(perfstat.MetricSerialRPS), s.Metric(perfstat.MetricParallelRPS),
			s.Metric(perfstat.MetricSpeedup), s.Metric(perfstat.MetricSteals),
			int(s.Metric(perfstat.MetricMismatches)))
	}
	if s := e.Scenario(perfstat.ScenarioBatchDecode); s != nil {
		fmt.Fprintf(w, "perfstat: %s: %d records, %.0f rec/s, %.1f allocs/batch\n",
			s.Name, s.Records, s.Metric(perfstat.MetricDecodeRPS), s.Metric(perfstat.MetricDecodeAlloc))
	}
}
