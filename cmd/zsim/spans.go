package main

import (
	"fmt"
	"os"
	"strings"

	"bulkpreload/internal/obs/export"
	"bulkpreload/internal/obs/span"
)

// writeSpans renders a collected span trace to path. The extension
// picks the format: .jsonl writes one JSON object per event for ad-hoc
// tooling (jq, log pipelines); anything else writes a Chrome
// trace_event array loadable in Perfetto or chrome://tracing, with one
// process lane per scheduler worker.
func writeSpans(path string, tr *span.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	evs := tr.Events()
	if strings.HasSuffix(path, ".jsonl") {
		err = export.WriteJSONLSpans(f, evs)
	} else {
		err = export.WriteChromeSpans(f, evs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("span export %s: %w", path, err)
	}
	return nil
}
