// Command zbpcheck is the multichecker for the simulator's
// domain-specific analyzer suite (internal/check/...): it mechanically
// enforces determinism, the paper's address bit-geometry, every
// declared packed bit-layout (//zbp:layout pack/unpack codecs, proven
// against the declaration and against each other), the
// zero-allocation hot-path contract, metrics registration, error
// handling, the shard scheduler's state-ownership discipline, the bulk
// fast path's inertness proof, loop cancellation, the service layer's
// locking discipline (deadlock-free acquisition order, no blocking
// under a mutex, guarded-field access), the crash-durability effect
// order, and the freshness of every //zbp: directive. CI runs it on
// every build; run it locally with
//
//	go run ./cmd/zbpcheck ./...
//
// Diagnostics print as file:line:col: [analyzer] message, and the exit
// status is 1 when any diagnostic (including an unused //zbp:allow) is
// reported. With -json the findings are emitted as one JSON object on
// stdout (and, under GITHUB_ACTIONS, as ::error workflow commands on
// stderr so they surface as inline PR annotations). See
// docs/STATIC_ANALYSIS.md for the analyzer catalogue and the
// //zbp:hotpath, //zbp:wallclock, //zbp:allow, //zbp:inert,
// //zbp:bounded, //zbp:locked, //zbp:guardedby, //zbp:caller-holds,
// //zbp:durable, and //zbp:layout annotations.
//
// The checker loads packages offline: module and vendored packages by
// path mapping, standard-library imports from GOROOT source. Packages
// are analyzed in dependency order so analyzers that export facts
// (inertpath) see their dependencies' facts, exactly as upstream
// go/analysis drivers schedule them. It analyzes non-test files (the
// contracts it enforces are production ones; fixtures under testdata
// are exercised by the analysistest suite instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/bitrange"
	"bulkpreload/internal/check/ctxflow"
	"bulkpreload/internal/check/determinism"
	"bulkpreload/internal/check/durable"
	"bulkpreload/internal/check/erring"
	"bulkpreload/internal/check/facts"
	"bulkpreload/internal/check/guardedby"
	"bulkpreload/internal/check/hotalloc"
	"bulkpreload/internal/check/inertpath"
	"bulkpreload/internal/check/load"
	"bulkpreload/internal/check/lockorder"
	"bulkpreload/internal/check/obsreg"
	"bulkpreload/internal/check/packlayout"
	"bulkpreload/internal/check/sharedstate"
	"bulkpreload/internal/check/staledirective"
)

// Suite is the full analyzer suite, in reporting order.
var suite = []*analysis.Analyzer{
	determinism.Analyzer,
	bitrange.Analyzer,
	packlayout.Analyzer,
	hotalloc.Analyzer,
	obsreg.Analyzer,
	erring.Analyzer,
	sharedstate.Analyzer,
	inertpath.Analyzer,
	ctxflow.Analyzer,
	lockorder.Analyzer,
	guardedby.Analyzer,
	durable.Analyzer,
	staledirective.Analyzer,
}

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout (plus GitHub ::error annotations when GITHUB_ACTIONS is set)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: zbpcheck [-list] [-json] [packages]\n\nAnalyzes the module's packages (default ./...).\nPatterns: ./... or package directories relative to the module root.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listOnly {
		for _, a := range suite {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args(), *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "zbpcheck:", err)
		os.Exit(2)
	}
}

type diag struct {
	pos      token.Position
	analyzer string
	d        analysis.Diagnostic
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(patterns []string, jsonOut bool) error {
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, modPath, err := load.FindModule(wd)
	if err != nil {
		return err
	}
	l := load.New(root, modPath)
	pkgs, err := l.ModulePackages()
	if err != nil {
		return err
	}
	// Facts flow from a package to its importers, so analysis must
	// respect the import graph even when the user narrows the reported
	// set: analyze everything in dependency order, filter afterwards.
	pkgs = load.DependencyOrder(pkgs)
	selected := make(map[*load.Package]bool)
	for _, pkg := range filterPackages(pkgs, root, wd, patterns) {
		selected[pkg] = true
	}
	if len(selected) == 0 {
		return fmt.Errorf("no packages match %v", patterns)
	}

	store := facts.NewStore()
	var diags []diag
	seen := map[string]bool{} // dedupe identical cross-analyzer reports (malformed allows)
	for _, pkg := range pkgs {
		pkg := pkg
		pass := &analysis.Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypeSizes,
		}
		facts.Bind(pass, store)
		for _, a := range suite {
			pass.Analyzer = a
			pass.Report = func(d analysis.Diagnostic) {
				if !selected[pkg] {
					return // analyzed for facts only
				}
				pos := pkg.Fset.Position(d.Pos)
				key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				diags = append(diags, diag{pos: pos, analyzer: a.Name, d: d})
			}
			if _, err := a.Run(pass); err != nil {
				return fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	if jsonOut {
		return emitJSON(wd, diags)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: [%s] %s\n", relTo(wd, d.pos.Filename), d.pos.Line, d.pos.Column, d.analyzer, d.d.Message)
		for _, fix := range d.d.SuggestedFixes {
			fmt.Printf("\tsuggested fix: %s\n", fix.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Printf("zbpcheck: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// emitJSON writes the machine-readable findings report and exits 1 when
// it is non-empty, mirroring the human-readable path's gating.
func emitJSON(wd string, diags []diag) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     relTo(wd, d.pos.Filename),
			Line:     d.pos.Line,
			Col:      d.pos.Column,
			Analyzer: d.analyzer,
			Message:  d.d.Message,
		})
	}
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	out := struct {
		Analyzers []string      `json:"analyzers"`
		Findings  []jsonFinding `json:"findings"`
		Count     int           `json:"count"`
	}{Analyzers: names, Findings: findings, Count: len(findings)}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if os.Getenv("GITHUB_ACTIONS") != "" {
		for _, f := range findings {
			// GitHub workflow command: renders as an inline annotation.
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d::[%s] %s\n",
				f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

func relTo(wd, file string) string {
	if r, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}

// filterPackages applies the command-line patterns: "./..." (or no
// patterns) keeps everything; "./dir/..." keeps the subtree under the
// working directory's dir; other patterns match package directories
// exactly (relative to the working directory).
func filterPackages(pkgs []*load.Package, root, wd string, patterns []string) []*load.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*load.Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg, wd, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pkg *load.Package, wd, pat string) bool {
	if pat == "all" {
		return true
	}
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			return strings.HasPrefix(pkg.Dir+string(filepath.Separator), wd+string(filepath.Separator)) || pkg.Dir == wd
		}
	}
	abs := pat
	if !filepath.IsAbs(pat) {
		abs = filepath.Join(wd, pat)
	}
	if pkg.Dir == abs {
		return true
	}
	return recursive && strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator))
}
