// Command zbpcheck is the multichecker for the simulator's
// domain-specific analyzer suite (internal/check/...): it mechanically
// enforces determinism, the paper's address bit-geometry, the
// zero-allocation hot-path contract, metrics registration, and error
// handling in the binaries and study layer. CI runs it on every build;
// run it locally with
//
//	go run ./cmd/zbpcheck ./...
//
// Diagnostics print as file:line:col: [analyzer] message, and the exit
// status is 1 when any diagnostic (including an unused //zbp:allow) is
// reported. See docs/STATIC_ANALYSIS.md for the analyzer catalogue and
// the //zbp:hotpath, //zbp:wallclock, and //zbp:allow annotations.
//
// The checker loads packages offline: module and vendored packages by
// path mapping, standard-library imports from GOROOT source. It
// analyzes non-test files (the contracts it enforces are production
// ones; fixtures under testdata are exercised by the analysistest
// suite instead).
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/bitrange"
	"bulkpreload/internal/check/determinism"
	"bulkpreload/internal/check/erring"
	"bulkpreload/internal/check/hotalloc"
	"bulkpreload/internal/check/load"
	"bulkpreload/internal/check/obsreg"
)

// Suite is the full analyzer suite, in reporting order.
var suite = []*analysis.Analyzer{
	determinism.Analyzer,
	bitrange.Analyzer,
	hotalloc.Analyzer,
	obsreg.Analyzer,
	erring.Analyzer,
}

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: zbpcheck [packages]\n\nAnalyzes the module's packages (default ./...).\nPatterns: ./... or package directories relative to the module root.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listOnly {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "zbpcheck:", err)
		os.Exit(2)
	}
}

type diag struct {
	pos      token.Position
	analyzer string
	d        analysis.Diagnostic
}

func run(patterns []string) error {
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, modPath, err := load.FindModule(wd)
	if err != nil {
		return err
	}
	l := load.New(root, modPath)
	pkgs, err := l.ModulePackages()
	if err != nil {
		return err
	}
	pkgs = filterPackages(pkgs, root, wd, patterns)
	if len(pkgs) == 0 {
		return fmt.Errorf("no packages match %v", patterns)
	}

	var diags []diag
	seen := map[string]bool{} // dedupe identical cross-analyzer reports (malformed allows)
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypeSizes,
		}
		for _, a := range suite {
			pass.Analyzer = a
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				diags = append(diags, diag{pos: pos, analyzer: a.Name, d: d})
			}
			if _, err := a.Run(pass); err != nil {
				return fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		rel := d.pos.Filename
		if r, err := filepath.Rel(wd, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.pos.Line, d.pos.Column, d.analyzer, d.d.Message)
		for _, fix := range d.d.SuggestedFixes {
			fmt.Printf("\tsuggested fix: %s\n", fix.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Printf("zbpcheck: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// filterPackages applies the command-line patterns: "./..." (or no
// patterns) keeps everything; "./dir/..." keeps the subtree under the
// working directory's dir; other patterns match package directories
// exactly (relative to the working directory).
func filterPackages(pkgs []*load.Package, root, wd string, patterns []string) []*load.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*load.Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg, wd, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pkg *load.Package, wd, pat string) bool {
	if pat == "all" {
		return true
	}
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			return strings.HasPrefix(pkg.Dir+string(filepath.Separator), wd+string(filepath.Separator)) || pkg.Dir == wd
		}
	}
	abs := pat
	if !filepath.IsAbs(pat) {
		abs = filepath.Join(wd, pat)
	}
	if pkg.Dir == abs {
		return true
	}
	return recursive && strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator))
}
