// Command experiments regenerates every table and figure of the paper's
// evaluation section from the simulator, plus the ablation studies.
//
// Usage:
//
//	experiments               # everything (can take several minutes)
//	experiments -only fig2    # one experiment: table1..table5, fig2..fig7, ablations
//	experiments -insts 500000 # shorter traces for a quick pass
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"bulkpreload/internal/analysis"
	"bulkpreload/internal/area"
	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/obs/perfstat"
	"bulkpreload/internal/predictor"
	"bulkpreload/internal/report"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
	"bulkpreload/internal/zaddr"
)

func main() {
	var (
		only  = flag.String("only", "", "run a single experiment (see -list)")
		insts = flag.Int("insts", workload.DefaultInstructions, "dynamic instructions per trace")
		list  = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.IntVar(&workers, "workers", 0, "worker count for the diffgate experiment (0 = GOMAXPROCS)")
	flag.Parse()

	all := []struct {
		name string
		run  func(int)
	}{
		{"table1", table1},
		{"table2", table2},
		{"table3", table3},
		{"table4", table4},
		{"table5", table5},
		{"fig2", fig2},
		{"fig3", fig3},
		{"fig4", fig4},
		{"fig5", fig5},
		{"fig6", fig6},
		{"fig7", fig7},
		{"ablations", ablations},
		{"rowcov", rowcov},
		{"missmode", missmode},
		{"multiblock", multiblock},
		{"preload", preloadStudy},
		{"sharing", sharing},
		{"area", areaStudy},
		{"locality", locality},
		{"btbpsize", btbpSize},
		{"installdelay", installDelay},
		{"faults", faults},
		{"diffgate", diffgate},
		{"perfstat", perfstatStudy},
	}
	if *list {
		for _, e := range all {
			fmt.Println(e.name)
		}
		return
	}
	if *only != "" {
		for _, e := range all {
			if e.name == *only {
				e.run(*insts)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (see -list)\n", *only)
		os.Exit(2)
	}
	for _, e := range all {
		start := time.Now()
		e.run(*insts)
		fmt.Printf("  [%s took %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
}

// workers is the -workers flag: the parallel worker count the diffgate
// experiment runs against its serial oracle.
var workers int

// diffgate runs the serial-oracle differential gate outside the test
// suite: every Table 4 trace under every Table 3 configuration, run
// once single-threaded and once through the work-stealing batched
// pipeline, demanding bit-identical observability snapshots. Exits
// non-zero on any divergence, so it slots into release scripts.
func diffgate(insts int) {
	fmt.Println("Differential gate: serial oracle vs work-stealing batched pipeline")
	params := engine.DefaultParams()
	names := []string{sim.ConfigNoBTB2, sim.ConfigBTB2, sim.ConfigLargeL1}
	cfgs := sim.Table3()
	var units []sim.Unit
	for _, p := range workload.Table4Profiles(insts) {
		for _, name := range names {
			units = append(units, sim.ProfileUnit(p, cfgs[name], params, name))
		}
	}
	start := time.Now()
	mismatches, err := sim.VerifyDifferential(context.Background(), workers, units)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: diffgate: %v\n", err)
		os.Exit(1)
	}
	if len(mismatches) > 0 {
		for _, m := range mismatches {
			fmt.Fprintln(os.Stderr, " ", m)
		}
		fmt.Fprintf(os.Stderr, "experiments: diffgate: %d mismatches across %d units\n",
			len(mismatches), len(units))
		os.Exit(1)
	}
	fmt.Printf("  %d units (13 traces x 3 configs) bit-identical across both paths in %.1fs\n",
		len(units), time.Since(start).Seconds())

	// Second leg: the storage-layout gate. The packed
	// structure-of-arrays tables (the shipping default) against the
	// retained array-of-structs serial oracle, every Table 4 trace
	// under three seeds, including a mid-run ZBPC checkpoint
	// round-tripped through its gob encoding with each layout resuming
	// from the checkpoint the other layout wrote.
	fmt.Println("Layout gate: packed structure-of-arrays vs struct-layout serial oracle")
	lparams := engine.DefaultParams()
	lparams.WarmupInstructions = 5_000
	lparams.SnapshotInterval = int64(insts) / 4
	var lunits []sim.Unit
	for _, p := range workload.Table4Profiles(insts) {
		for s, seed := range []int64{p.Seed, p.Seed + 101, p.Seed + 9973} {
			pp := p
			pp.Seed = seed
			pp.Name = fmt.Sprintf("%s/seed%d", p.Name, s)
			lunits = append(lunits, sim.ProfileUnit(pp, core.DefaultConfig(), lparams, sim.ConfigBTB2))
		}
	}
	start = time.Now()
	mismatches, err = sim.VerifyLayoutDifferential(context.Background(), workers, lunits, int64(insts)/2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: diffgate: layout gate: %v\n", err)
		os.Exit(1)
	}
	if len(mismatches) > 0 {
		for _, m := range mismatches {
			fmt.Fprintln(os.Stderr, " ", m)
		}
		fmt.Fprintf(os.Stderr, "experiments: diffgate: layout gate: %d mismatches across %d units\n",
			len(mismatches), len(lunits))
		os.Exit(1)
	}
	fmt.Printf("  %d units (13 traces x 3 seeds) bit-identical across layouts, checkpoints included, in %.1fs\n",
		len(lunits), time.Since(start).Seconds())
}

// perfstatStudy runs the benchmark-trajectory scenarios once at the
// requested trace length and prints the entry as a table — the same
// measurements `zsim -perfstat` records into BENCH_parallel.json, here
// as a quick interactive readout.
func perfstatStudy(insts int) {
	fmt.Println("Benchmark trajectory scenarios (zsim -perfstat, BENCH_parallel.json)")
	for _, s := range perfstat.Scenarios() {
		fmt.Printf("  %-15s %s\n", s.Name, s.Description)
	}
	entry, err := perfstat.Run(context.Background(), perfstat.Options{
		Workers:           workers,
		Runs:              1,
		SweepInstructions: insts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: perfstat: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  measured at GOMAXPROCS=%d, %d workers:\n", entry.GOMAXPROCS, entry.Workers)
	for _, s := range entry.Scenarios {
		fmt.Printf("  %s (%d records):\n", s.Name, s.Records)
		names := make([]string, 0, len(s.Metrics))
		for name := range s.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("    %-26s %14.4g\n", name, s.Metrics[name])
		}
	}
}

// must unwraps a (value, error) study result; any shard failure aborts
// the experiment run with the joined error.
func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	return v
}

// table1 demonstrates the Table 1 search-pipeline throughput cases via
// directed microkernels: measured prediction rates under each regime.
func table1(int) {
	fmt.Println("Table 1. First level search pipeline throughput (directed kernels)")
	params := engine.DefaultParams()
	params.WarmupInstructions = 0
	type row struct {
		name string
		src  trace.Source
	}
	rows := []row{
		{"single taken loop (1 pred/cycle peak)", workload.KernelSingleTakenLoop(20_000)},
		{"taken chain, 8 sites (FIT regime)", workload.KernelTakenChain(8, 2_000)},
		{"taken chain, 200 sites (MRU regime)", workload.KernelTakenChain(200, 80)},
		{"not-taken pairs (2 per 5 cycles)", workload.KernelNotTakenRun(8, 500)},
		{"branchless run (16 B/cycle search)", workload.KernelBranchlessRun(4096, 40)},
	}
	for _, r := range rows {
		res := engine.Run(r.src, core.OneLevelConfig(), params, "t1")
		fmt.Printf("  %-42s CPI %6.3f, %5.1f%% branches, %5.2f%% bad\n",
			r.name, res.CPI(), 100*float64(res.Outcomes.Total())/float64(res.Instructions),
			100*res.Outcomes.BadRate())
	}
	tp := predictor.DefaultThroughput
	fmt.Printf("  configured rates: loop %v, FIT %v, MRU %v, other %v, NT-pair %v, NT %v cycles; seq %v cycles/row\n",
		tp.TakenLoop.Float(), tp.TakenFIT.Float(), tp.TakenMRU.Float(),
		tp.TakenOther.Float(), tp.NotTakenPaired.Float(), tp.NotTaken.Float(),
		tp.SeqSearchPerRow.Float())
	fmt.Println("  pipeline stages (paper Table 1):")
	for _, st := range predictor.PipelineStages() {
		fmt.Printf("    %-3s %s\n", st.Name, st.Search)
		if st.ReindexPrediction != "" {
			fmt.Printf("        re-index: %s\n", st.ReindexPrediction)
		}
		if st.ReindexSequential != "" {
			fmt.Printf("        sequential: %s\n", st.ReindexSequential)
		}
	}
}

// table2 walks the BTB1-miss detection sequence of Table 2.
func table2(int) {
	fmt.Println("Table 2. BTB1 miss detection (3-search illustration, as in the paper)")
	d := predictor.NewMissDetector(predictor.MissConfig{SearchLimit: 3})
	searches := []struct {
		addr  uint64
		found bool
	}{{0x102, false}, {0x120, false}, {0x140, false}}
	for i, s := range searches {
		at, miss := d.ObserveSearch(zaddr.Addr(s.addr), s.found)
		status := "no miss yet"
		if miss {
			status = fmt.Sprintf("BTB1 miss reported at starting search address %#x", uint64(at))
		}
		fmt.Printf("  search %d at %#x (empty): %s\n", i+1, s.addr, status)
	}
	fmt.Println("  shipping setting: 4 searches / 128 bytes (see fig6 for the sweep)")
}

// table3 prints the three simulated configurations.
func table3(int) {
	fmt.Println("Table 3. Simulated configurations")
	names := []string{sim.ConfigNoBTB2, sim.ConfigBTB2, sim.ConfigLargeL1}
	cfgs := sim.Table3()
	for _, n := range names {
		c := cfgs[n]
		btb2 := "disabled"
		if c.BTB2Enabled {
			btb2 = fmt.Sprintf("%d (%d x %d)", c.BTB2.Capacity(), c.BTB2.Rows, c.BTB2.Ways)
		}
		fmt.Printf("  %-11s BTBP %d (%d x %d)   BTB1 %d (%d x %d)   BTB2 %s\n",
			n, c.BTBP.Capacity(), c.BTBP.Rows, c.BTBP.Ways,
			c.BTB1.Capacity(), c.BTB1.Rows, c.BTB1.Ways, btb2)
	}
}

// table4 compares generated trace footprints against the paper's counts.
func table4(insts int) {
	var rows []report.Table4Row
	for _, p := range workload.Table4Profiles(insts) {
		rows = append(rows, report.MeasureTable4Row(
			p.Name, p.UniqueBranches, int(float64(p.UniqueBranches)*p.TakenFraction),
			workload.New(p)))
	}
	report.Table4(os.Stdout, rows)
}

// table5 prints the modeled chip configuration.
func table5(int) {
	p := engine.DefaultParams()
	fmt.Println("Table 5. Modeled zEC12 configuration (engine parameters)")
	fmt.Printf("  L1 instruction cache   %d KB (%d-way, %d B lines)\n",
		p.L1I.SizeBytes/1024, p.L1I.Ways, p.L1I.LineBytes)
	fmt.Printf("  L2 instruction cache   %d KB (%d-way; finite in hardware mode only)\n",
		p.L2I.SizeBytes/1024, p.L2I.Ways)
	fmt.Printf("  base issue rate        %.2f cycles/instruction\n", p.DispatchTicks.Float())
	fmt.Printf("  mispredict restart     %d cycles\n", p.MispredictPenalty)
	fmt.Printf("  surprise-taken redirect %d cycles\n", p.SurpriseTakenPenalty)
	fmt.Printf("  L1I / L2I miss penalty %d / +%d cycles\n", p.L1IMissPenalty, p.L2IMissPenalty)
	c := core.DefaultConfig()
	lo, hi := c.EstimatedFootprint()
	fmt.Printf("  first level footprint  %.1f-%.1f KB estimated (BTB1 %d + BTBP %d branches)\n",
		float64(lo)/1024, float64(hi)/1024, c.BTB1.Capacity(), c.BTBP.Capacity())
	fmt.Printf("  PHT/CTB/FIT/sBHT       %d / %d / %d / %d entries\n",
		c.PHTEntries, c.CTBEntries, c.FITEntries, c.SurpriseBHTEntries)
}

func fig2(insts int) {
	cs := must(sim.Figure2(insts, engine.DefaultParams()))
	report.Figure2(os.Stdout, cs)
}

func fig3(insts int) {
	rows := must(sim.Figure3(insts, engine.DefaultParams()))
	report.Figure3(os.Stdout, rows)
}

func fig4(insts int) {
	p, err := workload.ByName("zos-daytrader-dbserv", insts)
	if err != nil {
		panic(err)
	}
	src := workload.New(p)
	params := engine.DefaultParams()
	without := engine.Run(src, core.OneLevelConfig(), params, sim.ConfigNoBTB2)
	with := engine.Run(src, core.DefaultConfig(), params, sim.ConfigBTB2)
	report.Figure4(os.Stdout, p.Name, without, with)
}

// sweepProfiles picks a representative subset for the parameter sweeps
// (all 13 traces x many points is expensive; the paper averages 13).
func sweepProfiles(insts int) []workload.Profile {
	all := workload.Table4Profiles(insts)
	return []workload.Profile{all[0], all[1], all[6], all[10], all[11]}
}

func fig5(insts int) {
	pts := must(sim.SweepBTB2Size(sweepProfiles(insts), engine.DefaultParams(),
		[]int{512, 1024, 2048, 4096, 8192}))
	report.Sweep(os.Stdout, "Figure 5. Various BTB2 sizes (avg CPI improvement vs config 1)", pts)
}

func fig6(insts int) {
	pts := must(sim.SweepMissDefinition(sweepProfiles(insts), engine.DefaultParams(),
		[]int{1, 2, 3, 4, 6, 8}))
	report.Sweep(os.Stdout, "Figure 6. Various definitions of BTB1 miss (searches before reporting)", pts)
}

func fig7(insts int) {
	pts := must(sim.SweepTrackers(sweepProfiles(insts), engine.DefaultParams(),
		[]int{1, 2, 3, 4, 6, 8}))
	report.Sweep(os.Stdout, "Figure 7. Various numbers of BTB2 trackers", pts)
}

func ablations(insts int) {
	abs := must(sim.Ablations(sweepProfiles(insts), engine.DefaultParams()))
	report.Ablations(os.Stdout, abs)
}

// --- Section 6 future-work studies ---

func rowcov(insts int) {
	pts := must(sim.SweepRowCoverage(sweepProfiles(insts), engine.DefaultParams(), []int{32, 64, 128}))
	report.Sweep(os.Stdout,
		"Future work (sec. 6): BTB2 congruence-class coverage (constant 24k capacity)", pts)
}

func missmode(insts int) {
	pts := must(sim.SweepMissMode(sweepProfiles(insts), engine.DefaultParams()))
	report.Sweep(os.Stdout,
		"Future work (sec. 6): BTB1 miss definition - early speculative vs decode-time precise", pts)
}

func multiblock(insts int) {
	pts := must(sim.MultiBlockStudy(sweepProfiles(insts), engine.DefaultParams()))
	report.Sweep(os.Stdout,
		"Future work (sec. 6): bounded multi-block transfers", pts)
}

// preloadStudy compares software branch-preload instructions against the
// hardware bulk preload.
func preloadStudy(insts int) {
	prof, err := workload.ByName("zos-daytrader-dbserv", insts)
	if err != nil {
		panic(err)
	}
	pts := sim.PreloadStudy(prof, engine.DefaultParams())
	report.Sweep(os.Stdout,
		"Branch preload instructions (sec. 3.1) vs hardware bulk preload (gain vs config 1)", pts)
}

// sharing measures multiprogramming interference with and without the
// BTB2 (two LSPR workloads time sliced on one processor, like Table 4's
// trace 5).
func sharing(insts int) {
	fmt.Println("Multiprogramming: two LSPR workloads time-sliced on one processor")
	a, err := workload.ByName("zos-lspr-cb84", insts/2)
	if err != nil {
		panic(err)
	}
	b, err := workload.ByName("zos-lspr-ims", insts/2)
	if err != nil {
		panic(err)
	}
	params := engine.DefaultParams()
	const quantum = 20_000
	// An ordered slice, not a map: the report rows must print in the
	// same order on every run.
	for _, c := range []struct {
		name string
		cfg  core.Config
	}{
		{"config 1 (no BTB2)", core.OneLevelConfig()},
		{"config 2 (BTB2)", core.DefaultConfig()},
	} {
		name, cfg := c.name, c.cfg
		r := sim.SharingStudy(a, b, quantum, cfg, params, name)
		fmt.Printf("  %-20s solo CPI %.4f, mixed CPI %.4f, interference %+.2f%%\n",
			name, r.SoloCPI, r.MixedCPI, r.InterferencePct)
	}
}

// btbpSize sweeps the preload table's capacity.
func btbpSize(insts int) {
	pts := must(sim.SweepBTBPSize(sweepProfiles(insts), engine.DefaultParams(), []int{1, 2, 4, 6, 8}))
	report.Sweep(os.Stdout, "Design knob: BTBP capacity (avg CPI improvement vs config 1)", pts)
}

// installDelay sweeps the surprise-install write latency.
func installDelay(insts int) {
	pts := must(sim.SweepInstallDelay(sweepProfiles(insts), engine.DefaultParams(), []uint64{6, 12, 24, 48, 96}))
	report.Sweep(os.Stdout, "Design knob: surprise-install write latency", pts)
}

// faults runs the soft-error degradation study: accuracy and CPI under
// rising fault rates, unprotected vs parity-protected arrays.
func faults(insts int) {
	prof, err := workload.ByName("zos-daytrader-dbserv", insts)
	if err != nil {
		panic(err)
	}
	pts := must(sim.FaultStudy(prof, engine.DefaultParams(),
		[]float64{0.1, 1, 10, 100, 1000}))
	report.FaultTable(os.Stdout,
		"Soft-error degradation on zos-daytrader-dbserv (config 2)", pts)
}

// locality prints each trace's branch re-reference profile: the
// distribution that decides which hierarchy level catches each reuse,
// i.e. why Table 4's traces are BTB2 candidates.
func locality(insts int) {
	fmt.Println("Branch re-reference locality (median distance; share caught per level)")
	fmt.Printf("  %-26s %10s %8s %8s %8s %8s\n",
		"trace", "median", "BTBP", "+BTB1", "+BTB2", "beyond")
	for _, p := range workload.Table4Profiles(insts) {
		src := workload.New(p)
		h := analysis.BranchReuse(src)
		st := trace.Measure(src)
		ipb := float64(st.Instructions) / float64(st.Branches)
		cov := h.Coverage(ipb)
		fmt.Printf("  %-26s %10d %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			p.Name, h.Median(), cov.BTBPPct, cov.BTB1Pct, cov.BTB2Pct, cov.BeyondPct)
	}
}

// areaStudy prints the Section 6 SRAM-vs-eDRAM density analysis and the
// dynamic-energy comparison from one representative run.
func areaStudy(insts int) {
	fmt.Println("Future work (sec. 6): technology / area / energy analysis")
	type point struct {
		name string
		cfg  core.Config
		tech area.Technology
	}
	points := []point{
		{"config 2, SRAM BTB2 (shipping)", core.DefaultConfig(), area.SRAM},
		{"config 2, eDRAM BTB2", core.DefaultConfig(), area.EDRAM},
		{"config 3, 24k SRAM BTB1", core.LargeOneLevelConfig(), area.SRAM},
		{"config 1, no BTB2", core.OneLevelConfig(), area.SRAM},
	}
	fmt.Printf("  %-32s %10s %10s %14s\n", "design point", "capacity", "mm^2", "preds/mm^2")
	for _, pt := range points {
		r := area.Analyze(pt.cfg, pt.tech)
		fmt.Printf("  %-32s %10d %10.3f %14.0f\n", pt.name, r.Capacity, r.TotalMm2, r.PredictionsPerMm2)
	}

	// Energy: one run of the headline trace per configuration.
	prof, err := workload.ByName("zos-daytrader-dbserv", insts)
	if err != nil {
		panic(err)
	}
	fmt.Println("  dynamic BTB energy on zos-daytrader-dbserv:")
	for _, pt := range points {
		res := engine.Run(workload.New(prof), pt.cfg, engine.DefaultParams(), pt.name)
		e := area.EstimateEnergy(pt.cfg, area.AccessCounts{
			BTB1: res.BTB1, BTBP: res.BTBP, BTB2: res.BTB2,
		}, pt.tech, res.Cycles, float64(res.Tracker.RowsRead))
		fmt.Printf("  %-32s %8.1f uJ (dyn %5.1f + leak %5.1f), %6.2f nJ/1k-insts, CPI %.4f\n",
			pt.name, e.TotalPJ()/1e6, e.DynamicPJ()/1e6, e.StaticPJ()/1e6,
			e.TotalPJ()/1e3/(float64(res.Instructions)/1000), res.CPI())
	}
}
