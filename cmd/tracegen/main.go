// Command tracegen synthesizes a workload trace and writes it as a ZBPT
// binary file, or summarizes an existing file's footprint (the Table 4
// metrics).
//
// Usage:
//
//	tracegen -trace zos-lspr-cicsdb2 -insts 1000000 -o cicsdb2.zbpt
//	tracegen -stats cicsdb2.zbpt
package main

import (
	"flag"
	"fmt"
	"os"

	"bulkpreload/internal/analysis"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

func main() {
	var (
		traceName = flag.String("trace", "", "Table 4 workload name to generate")
		insts     = flag.Int("insts", workload.DefaultInstructions, "dynamic instructions")
		out       = flag.String("o", "", "output ZBPT file (default <trace>.zbpt)")
		statsFile = flag.String("stats", "", "summarize an existing ZBPT file and exit")
		reuse     = flag.Bool("reuse", false, "also print the branch re-reference histogram and level coverage")
		asmFns    = flag.Int("asm", 0, "disassemble the first N functions of the generated program")
		list      = flag.Bool("list", false, "list workload names and exit")
	)
	flag.Parse()

	switch {
	case *list:
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
	case *statsFile != "":
		src, err := trace.ReadFile(*statsFile)
		if err != nil {
			fatal(err)
		}
		fmt.Println(trace.Measure(src))
		if *reuse {
			printReuse(src)
		}
	case *traceName != "":
		p, err := workload.ByName(*traceName, *insts)
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = p.Name + ".zbpt"
		}
		src := workload.New(p)
		if err := trace.WriteFile(path, src); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %s\n", path, trace.Measure(src))
		if *reuse {
			printReuse(src)
		}
		if *asmFns > 0 {
			if err := src.Disassemble(os.Stdout, *asmFns); err != nil {
				fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printReuse prints the locality analysis that determines which
// hierarchy level catches each branch re-reference.
func printReuse(src trace.Source) {
	h := analysis.BranchReuse(src)
	st := trace.Measure(src)
	fmt.Print(h.String())
	if st.Branches > 0 {
		ipb := float64(st.Instructions) / float64(st.Branches)
		cov := h.Coverage(ipb)
		fmt.Printf("median re-reference distance: %d instructions\n", h.Median())
		fmt.Printf("level coverage estimate: BTBP %.1f%%, +BTB1 %.1f%%, +BTB2 %.1f%%, beyond %.1f%%\n",
			cov.BTBPPct, cov.BTB1Pct, cov.BTB2Pct, cov.BeyondPct)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
