package analysis

import "go/token"

// A Diagnostic is a message associated with a source location or
// range. An Analyzer may return a variety of diagnostics; the optional
// Category, which should be a constant, may be used to classify them.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional
	Message  string

	// URL is the optional location of a web page that provides
	// additional documentation for this diagnostic.
	URL string

	// SuggestedFixes is an optional list of fixes to address the
	// problem described by the diagnostic. Each one represents an
	// alternative strategy; at most one may be applied.
	SuggestedFixes []SuggestedFix

	// Related contains optional secondary positions and messages
	// related to the primary diagnostic.
	Related []RelatedInformation
}

// RelatedInformation contains information related to a diagnostic.
// For example, a diagnostic that flags duplicated declarations of a
// variable may include one RelatedInformation per existing
// declaration.
type RelatedInformation struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}

// A SuggestedFix is a code change associated with a Diagnostic that a
// user can choose to apply to their code. Usually the SuggestedFix is
// meant to fix the issue flagged by the diagnostic.
type SuggestedFix struct {
	// A verb phrase describing the fix, to be shown to a user trying
	// to decide whether to apply it.
	Message string

	// TextEdits for this fix. Edits should not overlap, nor contain
	// edits for other packages.
	TextEdits []TextEdit
}

// A TextEdit represents the replacement of the code between Pos and
// End with the new text. Pos and End positions must be within the
// same file.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
