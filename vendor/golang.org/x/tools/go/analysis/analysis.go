// Package analysis defines the interface between a modular static
// analysis and an analysis driver program.
//
// This vendored copy is an offline, API-compatible subset of
// golang.org/x/tools/go/analysis sufficient for the zbpcheck suite: the
// Analyzer/Pass/Diagnostic contract, suggested fixes, and object /
// package facts (see facts.go). It omits the Requires graph and the
// upstream drivers (this module ships its own loader in
// internal/check/load, its own fact store in internal/check/facts, and
// its own fixture harness in internal/check/analysistest). Analyzers
// written against this package compile unmodified against the upstream
// module; see docs/STATIC_ANALYSIS.md for why the subset is vendored.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer describes an analysis function and its options.
type Analyzer struct {
	// Name of the analyzer. It must be a valid Go identifier, as it
	// may appear in command-line flags, URLs, and so on.
	Name string

	// Doc is the documentation for the analyzer. The first sentence is
	// its one-line summary.
	Doc string

	// URL holds an optional link to a web page with additional
	// documentation for this analyzer.
	URL string

	// Run applies the analyzer to a package. It returns an error if
	// the analysis failed (distinct from reporting diagnostics).
	Run func(*Pass) (interface{}, error)

	// RunDespiteErrors allows the driver to invoke the analyzer even
	// on a package that contains type errors.
	RunDespiteErrors bool

	// Requires is the set of analyses this one depends on. The
	// zbpcheck analyzers are self-contained, so the local driver
	// requires this to be empty.
	Requires []*Analyzer

	// ResultType is the type of the optional result of the Run
	// function.
	ResultType reflect.Type

	// FactTypes indicates that this analyzer imports and exports Facts
	// of the specified concrete types. An analyzer that uses facts may
	// assume that its import path will be analyzed before any path that
	// transitively imports it. Fact values must be gob-serializable;
	// the driver round-trips every exported fact through gob so an
	// analyzer cannot accidentally depend on shared mutable state.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides information to the Run function that applies a
// specific analyzer to a single Go package. The Run function should
// not call any of the Pass functions concurrently.
type Pass struct {
	Analyzer *Analyzer // the identity of the current analyzer

	// syntax and type information
	Fset       *token.FileSet // file position information
	Files      []*ast.File    // the abstract syntax tree of each file
	OtherFiles []string       // names of non-Go files of this package
	Pkg        *types.Package // type information about the package
	TypesInfo  *types.Info    // type information about the syntax trees
	TypesSizes types.Sizes    // function for computing sizes of types

	// Report reports a Diagnostic, a finding about a specific location
	// in the analyzed source code.
	Report func(Diagnostic)

	// ResultOf provides the inputs to this analysis that are required
	// by the Requires field.
	ResultOf map[*Analyzer]interface{}

	// ImportObjectFact retrieves a fact associated with obj and stored
	// by an earlier pass of the same analyzer (possibly over a
	// dependency package). Given a value ptr of type *T, where *T
	// satisfies Fact, ImportObjectFact copies the fact value into *ptr
	// and returns true if a fact of that type exists; otherwise it
	// leaves *ptr untouched and returns false.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportObjectFact associates a fact of type *T with obj, replacing
	// any previous fact of that type. obj must belong to the package
	// being analyzed, or to one of its dependencies.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportPackageFact retrieves a fact associated with package pkg,
	// which must be this package or one of its dependencies, with the
	// same copy-out contract as ImportObjectFact.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool

	// ExportPackageFact associates a fact with the current package,
	// replacing any previous fact of that type.
	ExportPackageFact func(fact Fact)

	// AllObjectFacts returns the object facts currently known to the
	// pass, in unspecified order.
	AllObjectFacts func() []ObjectFact

	// AllPackageFacts returns the package facts currently known to the
	// pass, in unspecified order.
	AllPackageFacts func() []PackageFact
}

// Reportf is a helper function that reports a Diagnostic using the
// specified position and formatted error message.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	pass.Report(Diagnostic{Pos: pos, Message: msg})
}

// A Range provides the extent of a syntax node or other source region.
type Range interface {
	Pos() token.Pos // position of first character belonging to the node
	End() token.Pos // position of first character immediately after the node
}

// ReportRangef is a helper function that reports a Diagnostic using
// the range provided. ast.Node values can be passed in as the range.
func (pass *Pass) ReportRangef(rng Range, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	pass.Report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: msg})
}

func (pass *Pass) String() string {
	return fmt.Sprintf("%s@%s", pass.Analyzer.Name, pass.Pkg.Path())
}
