package analysis

import "go/types"

// A Fact is an intermediate fact produced during analysis.
//
// Each fact is associated with a named declaration (an object) or with
// a package as a whole. A single object or package may have multiple
// associated facts, but only one of any particular fact type.
//
// A Fact type must be a pointer type, all of whose elements are
// exported (or an empty struct), as facts are serialized with
// encoding/gob when they cross package boundaries: the driver stores
// the gob encoding, never the live value, so facts behave identically
// in-process and in a distributed build.
//
// The AFact method has no run-time effect; it exists only to mark the
// type as a Fact and to keep unrelated types out of the fact store.
type Fact interface {
	AFact() // dummy method to avoid type errors
}

// An ObjectFact is a fact about a named object.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// A PackageFact is a fact about a package.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}
