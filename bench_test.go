package bulkpreload_test

// One benchmark per table and figure of the paper's evaluation section.
// Each bench runs the corresponding experiment at a bench-friendly trace
// length and reports the headline quantities as custom metrics
// (improvement-pct, effectiveness-pct, bad-pct, CPI), so
//
//	go test -bench=. -benchmem
//
// regenerates the full result set. cmd/experiments produces the same
// numbers at full trace length with formatted output.

import (
	"fmt"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/predictor"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
	"bulkpreload/internal/zaddr"
)

// benchInsts keeps every benchmark iteration around a second or less.
const benchInsts = 300_000

func benchParams() engine.Params {
	p := engine.DefaultParams()
	p.WarmupInstructions = 50_000
	return p
}

// --- Table 1: search pipeline throughput ---

func BenchmarkTable1SearchPipeline(b *testing.B) {
	kernels := []struct {
		name string
		src  trace.Source
	}{
		{"single-taken-loop", workload.KernelSingleTakenLoop(30_000)},
		{"taken-chain-fit", workload.KernelTakenChain(8, 2_000)},
		{"taken-chain-mru", workload.KernelTakenChain(200, 100)},
		{"not-taken-pairs", workload.KernelNotTakenRun(8, 600)},
		{"branchless-run", workload.KernelBranchlessRun(4096, 40)},
	}
	params := engine.DefaultParams()
	params.WarmupInstructions = 0
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			var cpi float64
			for i := 0; i < b.N; i++ {
				r := engine.Run(k.src, core.OneLevelConfig(), params, "t1")
				cpi = r.CPI()
			}
			b.ReportMetric(cpi, "CPI")
		})
	}
}

// --- Table 2: BTB1 miss detection ---

func BenchmarkTable2MissDetection(b *testing.B) {
	// A long predictionless search stream through the detector at the
	// shipping 4-search limit: throughput of the miss state machine and
	// the resulting miss rate per row searched.
	var misses int64
	for i := 0; i < b.N; i++ {
		d := predictor.NewMissDetector(predictor.DefaultMissConfig)
		misses = 0
		for row := 0; row < 4096; row++ {
			if _, m := d.ObserveSearch(zaddr.Addr(row*32), row%5 == 4); m {
				misses++
			}
		}
	}
	b.ReportMetric(float64(misses), "misses/4096-rows")
}

// --- Table 3: the three simulated configurations ---

func BenchmarkTable3Configs(b *testing.B) {
	prof, err := workload.ByName("zos-daytrader-dbserv", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	for name, cfg := range sim.Table3() {
		b.Run(name, func(b *testing.B) {
			var cpi float64
			for i := 0; i < b.N; i++ {
				r := engine.Run(workload.New(prof), cfg, benchParams(), name)
				cpi = r.CPI()
			}
			b.ReportMetric(cpi, "CPI")
		})
	}
}

// --- Table 4: trace footprints ---

func BenchmarkTable4TraceFootprints(b *testing.B) {
	for _, p := range workload.Table4Profiles(benchInsts) {
		b.Run(p.Name, func(b *testing.B) {
			var st trace.Stats
			for i := 0; i < b.N; i++ {
				st = trace.Measure(workload.New(p))
			}
			b.ReportMetric(float64(st.UniqueBranches), "unique-branches")
			b.ReportMetric(float64(st.UniqueTaken), "unique-taken")
		})
	}
}

// --- Table 5: chip configuration (structure build cost) ---

func BenchmarkTable5HierarchyBuild(b *testing.B) {
	// Building the full shipping hierarchy (all SRAM/register structures
	// allocated and validated).
	for i := 0; i < b.N; i++ {
		h := core.New(core.DefaultConfig())
		if h == nil {
			b.Fatal("nil hierarchy")
		}
	}
}

// --- Figure 2: CPI improvement per trace ---

func BenchmarkFig2CPIImprovement(b *testing.B) {
	for _, p := range workload.Table4Profiles(benchInsts) {
		b.Run(p.Name, func(b *testing.B) {
			var c sim.Comparison
			for i := 0; i < b.N; i++ {
				c = sim.Compare(workload.New(p), benchParams())
			}
			b.ReportMetric(c.BTB2Improvement(), "btb2-improvement-pct")
			b.ReportMetric(c.LargeImprovement(), "large-btb1-improvement-pct")
			b.ReportMetric(c.Effectiveness(), "effectiveness-pct")
		})
	}
}

// --- Figure 3: hardware mode ---

func BenchmarkFig3HardwareMode(b *testing.B) {
	var rows []sim.HardwareResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.Figure3(benchInsts/2, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SimGain, fmt.Sprintf("sim-gain-pct-%dcore", r.Cores))
		b.ReportMetric(r.HardwareGain, fmt.Sprintf("hw-gain-pct-%dcore", r.Cores))
	}
}

// --- Figure 4: bad branch outcomes on DayTrader DBServ ---

func BenchmarkFig4BadOutcomes(b *testing.B) {
	prof, err := workload.ByName("zos-daytrader-dbserv", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	var without, with engine.Result
	for i := 0; i < b.N; i++ {
		src := workload.New(prof)
		without = engine.Run(src, core.OneLevelConfig(), benchParams(), "no-btb2")
		with = engine.Run(src, core.DefaultConfig(), benchParams(), "btb2")
	}
	b.ReportMetric(100*without.Outcomes.BadRate(), "bad-pct-no-btb2")
	b.ReportMetric(100*without.Outcomes.Rate(stats.BadSurpriseCapacity), "capacity-pct-no-btb2")
	b.ReportMetric(100*with.Outcomes.BadRate(), "bad-pct-btb2")
	b.ReportMetric(100*with.Outcomes.Rate(stats.BadSurpriseCapacity), "capacity-pct-btb2")
}

// sweep helpers shared by Figures 5-7: a representative trace subset.
func benchSweepProfiles() []workload.Profile {
	all := workload.Table4Profiles(150_000)
	return []workload.Profile{all[0], all[10]}
}

// --- Figure 5: BTB2 size sweep ---

func BenchmarkFig5BTB2Size(b *testing.B) {
	for _, rows := range []int{1024, 4096, 8192} {
		b.Run(fmt.Sprintf("rows-%d", rows), func(b *testing.B) {
			var pts []sim.SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = sim.SweepBTB2Size(benchSweepProfiles(), benchParams(), []int{rows})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].Improvement, "improvement-pct")
		})
	}
}

// --- Figure 6: BTB1 miss definition sweep ---

func BenchmarkFig6MissDefinition(b *testing.B) {
	for _, lim := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("searches-%d", lim), func(b *testing.B) {
			var pts []sim.SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = sim.SweepMissDefinition(benchSweepProfiles(), benchParams(), []int{lim})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].Improvement, "improvement-pct")
		})
	}
}

// --- Figure 7: tracker count sweep ---

func BenchmarkFig7Trackers(b *testing.B) {
	for _, n := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("trackers-%d", n), func(b *testing.B) {
			var pts []sim.SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = sim.SweepTrackers(benchSweepProfiles(), benchParams(), []int{n})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].Improvement, "improvement-pct")
		})
	}
}

// --- Ablations: the DESIGN.md design-choice studies ---

func BenchmarkAblationSteering(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.UseSteering = false })
}

func BenchmarkAblationICacheFilter(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Tracker.FilterByICache = false })
}

func BenchmarkAblationTrueExclusive(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Policy = core.TrueExclusive })
}

func BenchmarkAblationInclusive(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Policy = core.Inclusive })
}

// benchAblation measures a config variant against the shipping two-level
// design on the headline trace.
func benchAblation(b *testing.B, mutate func(*core.Config)) {
	prof, err := workload.ByName("zos-daytrader-dbserv", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	variant := core.DefaultConfig()
	mutate(&variant)
	var ship, vary engine.Result
	for i := 0; i < b.N; i++ {
		src := workload.New(prof)
		ship = engine.Run(src, core.DefaultConfig(), benchParams(), "shipping")
		vary = engine.Run(src, variant, benchParams(), "variant")
	}
	b.ReportMetric(ship.CPI(), "CPI-shipping")
	b.ReportMetric(vary.CPI(), "CPI-variant")
}

// --- End-to-end simulator throughput (engineering metric) ---

func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := workload.ByName("zos-lspr-cb84", 200_000)
	if err != nil {
		b.Fatal(err)
	}
	src := workload.New(prof)
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		r := engine.Run(src, core.DefaultConfig(), benchParams(), "bench")
		insts += r.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// --- Section 6 future-work study benches ---

func BenchmarkRowCoverage(b *testing.B) {
	for _, w := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("%dB", w), func(b *testing.B) {
			var pts []sim.SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = sim.SweepRowCoverage(benchSweepProfiles(), benchParams(), []int{w})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].Improvement, "improvement-pct")
		})
	}
}

func BenchmarkMissMode(b *testing.B) {
	var pts []sim.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sim.SweepMissMode(benchSweepProfiles(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Improvement, p.Label+"-pct")
	}
}

func BenchmarkMultiBlockTransfer(b *testing.B) {
	var pts []sim.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sim.MultiBlockStudy(benchSweepProfiles(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Improvement, "single-block-pct")
	b.ReportMetric(pts[1].Improvement, "multi-block-pct")
}

func BenchmarkPreloadInstructions(b *testing.B) {
	prof, err := workload.ByName("zos-daytrader-dbserv", benchInsts/2)
	if err != nil {
		b.Fatal(err)
	}
	var pts []sim.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = sim.PreloadStudy(prof, benchParams())
	}
	for _, p := range pts {
		b.ReportMetric(p.Improvement, fmt.Sprintf("pt%d-pct", int(p.Value)))
	}
}

func BenchmarkSharingInterference(b *testing.B) {
	a, err := workload.ByName("zos-lspr-cb84", benchInsts/2)
	if err != nil {
		b.Fatal(err)
	}
	c, err := workload.ByName("zos-lspr-ims", benchInsts/2)
	if err != nil {
		b.Fatal(err)
	}
	var r sim.SharingResult
	for i := 0; i < b.N; i++ {
		r = sim.SharingStudy(a, c, 20_000, core.DefaultConfig(), benchParams(), "bench")
	}
	b.ReportMetric(r.InterferencePct, "interference-pct")
}
