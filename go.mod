module bulkpreload

go 1.22

require golang.org/x/tools v0.24.0
