module bulkpreload

go 1.22
