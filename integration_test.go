package bulkpreload_test

// End-to-end integration tests across the module seams: workload
// generation -> ZBPT trace file -> simulation -> comparison -> report
// rendering, plus cross-configuration invariants that only hold when all
// subsystems cooperate.

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/report"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

func integrationProfile() workload.Profile {
	return workload.Profile{
		Name:                "integration",
		UniqueBranches:      10_000,
		TakenFraction:       0.65,
		Instructions:        150_000,
		HotFraction:         0.15,
		WindowFunctions:     32,
		CallsPerTransaction: 6,
		Seed:                31337,
	}
}

// TestTraceFileSimulationEquivalence: simulating a workload directly and
// simulating the same workload after a round trip through the ZBPT file
// format must produce identical results.
func TestTraceFileSimulationEquivalence(t *testing.T) {
	src := workload.New(integrationProfile())
	path := filepath.Join(t.TempDir(), "w.zbpt")
	if err := trace.WriteFile(path, src); err != nil {
		t.Fatal(err)
	}
	fileSrc, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	params := engine.DefaultParams()
	params.WarmupInstructions = 20_000
	direct := engine.Run(src, core.DefaultConfig(), params, "x")
	viaFile := engine.Run(fileSrc, core.DefaultConfig(), params, "x")
	if direct.Cycles != viaFile.Cycles || direct.Outcomes != viaFile.Outcomes {
		t.Errorf("direct and file-backed runs diverge: %.2f vs %.2f cycles",
			direct.Cycles, viaFile.Cycles)
	}
}

// TestFullComparisonPipeline drives sim.Compare and renders every report
// format, checking the structural relationships the paper establishes.
func TestFullComparisonPipeline(t *testing.T) {
	params := engine.DefaultParams()
	params.WarmupInstructions = 20_000
	c := sim.Compare(workload.New(integrationProfile()), params)

	// Capacity-bound workload: the enhanced configurations beat the
	// baseline.
	if c.BTB2Improvement() <= 0 || c.LargeImprovement() <= 0 {
		t.Errorf("improvements not positive: btb2 %.2f%%, large %.2f%%",
			c.BTB2Improvement(), c.LargeImprovement())
	}
	// The BTB2 run must have performed bulk transfers, and the baseline
	// none.
	if c.BTB2.Hier.TransferredHits == 0 {
		t.Error("two-level run performed no bulk transfers")
	}
	if c.Base.Hier.TransferredHits != 0 || c.LargeBTB1.Hier.TransferredHits != 0 {
		t.Error("BTB2-less runs performed transfers")
	}
	// Capacity surprises shrink when capacity is added.
	capOf := func(r engine.Result) int64 { return r.Outcomes.N[stats.BadSurpriseCapacity] }
	if !(capOf(c.BTB2) < capOf(c.Base)) {
		t.Errorf("BTB2 did not reduce capacity surprises: %d vs %d", capOf(c.BTB2), capOf(c.Base))
	}
	// Compulsory misses are configuration-independent (same trace).
	compOf := func(r engine.Result) int64 { return r.Outcomes.N[stats.BadSurpriseCompulsory] }
	if compOf(c.Base) != compOf(c.BTB2) || compOf(c.Base) != compOf(c.LargeBTB1) {
		t.Errorf("compulsory class varies across configs: %d / %d / %d",
			compOf(c.Base), compOf(c.BTB2), compOf(c.LargeBTB1))
	}

	// All report renderings produce non-empty output mentioning the key
	// terms.
	var buf bytes.Buffer
	report.Figure2(&buf, []sim.Comparison{c})
	report.Figure4(&buf, c.Trace, c.Base, c.BTB2)
	report.Result(&buf, c.BTB2)
	out := buf.String()
	for _, want := range []string{"effectiveness", "capacity", "integration", "transferred"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q", want)
		}
	}
}

// TestStatsConservation: every dynamic branch is classified exactly once
// under every configuration.
func TestStatsConservation(t *testing.T) {
	src := workload.New(integrationProfile())
	st := trace.Measure(src)
	params := engine.DefaultParams()
	params.WarmupInstructions = 0
	for name, cfg := range sim.Table3() {
		r := engine.Run(src, cfg, params, name)
		if r.Outcomes.Total() != st.Branches {
			t.Errorf("%s: %d outcomes vs %d branches", name, r.Outcomes.Total(), st.Branches)
		}
		if r.Instructions != st.Instructions {
			t.Errorf("%s: %d instructions vs %d", name, r.Instructions, st.Instructions)
		}
	}
}

// TestSweepShapesHold checks the qualitative shapes of the Figure 5-7
// sweeps on one workload: bigger BTB2 >= much smaller BTB2, and the
// 3-tracker shipping point >= the 1-tracker point (within noise).
func TestSweepShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps in -short mode")
	}
	profiles := []workload.Profile{integrationProfile()}
	params := engine.DefaultParams()
	params.WarmupInstructions = 20_000

	size, err := sim.SweepBTB2Size(profiles, params, []int{512, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if size[1].Improvement < size[0].Improvement-0.5 {
		t.Errorf("Figure 5 shape broken: 24k %.2f%% vs 3k %.2f%%",
			size[1].Improvement, size[0].Improvement)
	}
	trk, err := sim.SweepTrackers(profiles, params, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if trk[1].Improvement < trk[0].Improvement-0.5 {
		t.Errorf("Figure 7 shape broken: 3 trackers %.2f%% vs 1 tracker %.2f%%",
			trk[1].Improvement, trk[0].Improvement)
	}
}

// TestHardwareModeShrinksGain is the Figure 3 invariant: exposing cache
// levels the BTB2 cannot fix dilutes its relative improvement.
func TestHardwareModeShrinksGain(t *testing.T) {
	if testing.Short() {
		t.Skip("hardware mode in -short mode")
	}
	rows, err := sim.Figure3(120_000, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SimGain <= 0 {
			t.Errorf("%s: sim gain %.2f%% not positive", r.Name, r.SimGain)
		}
		if r.HardwareGain > r.SimGain+0.5 {
			t.Errorf("%s: hardware gain %.2f%% exceeds sim gain %.2f%%",
				r.Name, r.HardwareGain, r.SimGain)
		}
	}
	if rows[0].Cores != 1 || rows[1].Cores != 4 {
		t.Error("core counts wrong")
	}
}
