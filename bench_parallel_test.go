package bulkpreload_test

// Parallel-pipeline engineering benchmarks: the BTB2 capacity sweep run
// through the serial oracle and through the work-stealing batched
// scheduler, plus the zero-alloc batch decoder in isolation. The
// flag-gated TestEmitParallelBenchJSON runs the same measurements
// through the perfstat trajectory subsystem and appends one entry to
// the committed benchmark history:
//
//	go test -run TestEmitParallelBenchJSON -parallel-bench-out BENCH_parallel.json
//
// recording records/sec for both paths, the parallel speedup, decoder
// throughput and steady-state allocations, and the scheduler's
// work-stealing accounting — with the differential check folded in so a
// "fast" entry can never come from a diverged pipeline. The CI gate
// (`zsim -perfstat gate`) compares fresh runs against this history.

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"testing"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/core"
	"bulkpreload/internal/ctb"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/history"
	"bulkpreload/internal/obs/perfstat"
	"bulkpreload/internal/pht"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
	"bulkpreload/internal/zaddr"
)

var (
	parallelBenchOut = flag.String("parallel-bench-out", "",
		"append a perfstat trajectory entry to this file (empty = skip)")
	parallelBenchRuns = flag.Int("parallel-bench-runs", 1,
		"median-of-N repetitions for -parallel-bench-out")
	parallelBenchLabel = flag.String("parallel-bench-label", "",
		"label recorded in the -parallel-bench-out entry")
)

// capacitySweepUnits is the workload the parallel pipeline exists for:
// a Figure 5-style BTB2 capacity sweep, expressed as independent
// (config, trace) units. Base runs appear once per profile, exactly as
// sim.SweepBTB2Size dedups them.
func capacitySweepUnits() []sim.Unit {
	params := benchParams()
	rowCounts := []int{512, 1024, 2048, 4096, 8192}
	var units []sim.Unit
	for _, p := range benchSweepProfiles() {
		units = append(units, sim.ProfileUnit(p, core.OneLevelConfig(), params, "base"))
		for _, rows := range rowCounts {
			cfg := core.DefaultConfig()
			cfg.BTB2 = sim.BTB2Geometry(rows)
			units = append(units, sim.ProfileUnit(p, cfg, params, fmt.Sprintf("btb2-%drows", rows)))
		}
	}
	return units
}

func totalInstructions(res []engine.Result) int64 {
	var n int64
	for i := range res {
		n += res[i].Instructions
	}
	return n
}

// BenchmarkCapacitySweepSerialOracle is the single-threaded
// record-at-a-time reference path over the capacity sweep.
func BenchmarkCapacitySweepSerialOracle(b *testing.B) {
	units := capacitySweepUnits()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunUnitsSerial(units)
		if err != nil {
			b.Fatal(err)
		}
		insts = totalInstructions(res)
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkCapacitySweepParallel is the same sweep through the
// work-stealing batched pipeline at GOMAXPROCS workers.
func BenchmarkCapacitySweepParallel(b *testing.B) {
	units := capacitySweepUnits()
	ctx := context.Background()
	b.ResetTimer()
	var insts, steals int64
	for i := 0; i < b.N; i++ {
		res, stats, err := sim.RunUnitsStats(ctx, 0, units)
		if err != nil {
			b.Fatal(err)
		}
		insts = totalInstructions(res)
		steals += stats.Steals
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
}

// encodeBenchTrace serializes a generated workload to the ZBPT wire
// format in memory, returning the encoded bytes.
func encodeBenchTrace(tb testing.TB, insts int) []byte {
	tb.Helper()
	prof, err := workload.ByName("zos-daytrader-dbserv", insts)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Write(&buf, workload.New(prof)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkBatchDecode measures the bulk decoder's steady-state
// throughput and allocations per batch over an in-memory ZBPT stream.
// Each op is one full batch; the decoder rewind at EOF happens with the
// timer (and alloc accounting) stopped, so the reported allocs/op is
// the hot-path figure the zero-alloc gate pins at 0.
func BenchmarkBatchDecode(b *testing.B) {
	data := encodeBenchTrace(b, 200_000)
	br := bytes.NewReader(data)
	dec, err := trace.NewBatchDecoder(br, trace.DefaultBatchCapacity)
	if err != nil {
		b.Fatal(err)
	}
	batch := trace.NewBatch(trace.DefaultBatchCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	var records int64
	for i := 0; i < b.N; i++ {
		err := dec.Next(&batch)
		if err == io.EOF {
			b.StopTimer()
			if _, err := br.Seek(0, io.SeekStart); err != nil {
				b.Fatal(err)
			}
			if dec, err = trace.NewBatchDecoder(br, trace.DefaultBatchCapacity); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			err = dec.Next(&batch)
		}
		if err != nil {
			b.Fatal(err)
		}
		records += int64(len(batch.Ins))
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
}

// TestEmitParallelBenchJSON measures the perfstat scenarios — the same
// workload the benchmarks above run — and appends one trajectory entry
// to -parallel-bench-out (creating the file when missing), exactly like
// `zsim -perfstat append`. Skipped unless the flag is set, so the
// ordinary test run stays fast and file-free. The entry is refused if
// the differential cross-check or the decoder's zero-alloc invariant
// fails: a "fast" baseline can never come from a diverged pipeline.
func TestEmitParallelBenchJSON(t *testing.T) {
	if *parallelBenchOut == "" {
		t.Skip("pass -parallel-bench-out=BENCH_parallel.json to append a trajectory entry")
	}
	entry, err := perfstat.Run(context.Background(), perfstat.Options{
		Runs:  *parallelBenchRuns,
		Label: *parallelBenchLabel,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range perfstat.Compare(nil, entry, 0) {
		t.Error(r)
	}
	if t.Failed() {
		t.Fatal("refusing to record a diverged or allocating entry")
	}
	traj, err := perfstat.LoadTrajectory(*parallelBenchOut)
	if err != nil {
		t.Fatal(err)
	}
	traj.Append(entry)
	if err := traj.Write(*parallelBenchOut); err != nil {
		t.Fatal(err)
	}
	sweep := entry.Scenario(perfstat.ScenarioCapacitySweep)
	decode := entry.Scenario(perfstat.ScenarioBatchDecode)
	t.Logf("appended entry %d to %s: %.0f records/s serial, %.0f records/s parallel (%.2fx, %d workers, %.0f steals), decode %.0f records/s at %.1f allocs/batch",
		len(traj.Entries), *parallelBenchOut,
		sweep.Metric(perfstat.MetricSerialRPS), sweep.Metric(perfstat.MetricParallelRPS),
		sweep.Metric(perfstat.MetricSpeedup), entry.Workers, sweep.Metric(perfstat.MetricSteals),
		decode.Metric(perfstat.MetricDecodeRPS), decode.Metric(perfstat.MetricDecodeAlloc))
}

// TestPerfstatMirrorsBenchmarks pins the contract the trajectory rests
// on: the perfstat capacity-sweep scenario must measure exactly the
// unit set BenchmarkCapacitySweep* measures, label for label —
// otherwise committed entries and `go test -bench` stop describing the
// same workload.
// Per-structure storage-layout benchmarks: the same warm-table
// lookup/insert loops the perfstat packed_tables scenario times (same
// geometries — BTB1, default-size PHT/CTB — same stride, same warm
// fill), as `go test -bench` sub-benchmarks so the packed-vs-struct
// before/after is reproducible outside the trajectory file.

func benchBTBEntry(i int) btb.Entry {
	a := zaddr.Addr(0x10_0000 + i*40)
	return btb.Entry{Addr: a, Target: a + 64, Dir: 2, UsePHT: i%3 == 0, Length: uint8(i % 12)}
}

// BenchmarkPredictorTableLayouts measures every predictor structure's
// hot paths under both storage layouts.
func BenchmarkPredictorTableLayouts(b *testing.B) {
	for _, l := range []struct {
		name         string
		structLayout bool
	}{{"packed", false}, {"struct", true}} {
		structLayout := l.structLayout
		b.Run("btb-lookup/"+l.name, func(b *testing.B) {
			cfg := btb.BTB1Config
			cfg.StructLayout = structLayout
			t := btb.New(cfg)
			for i := 0; i < cfg.Capacity(); i++ {
				t.Insert(benchBTBEntry(i))
			}
			var hits []btb.Hit
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits = t.LookupLine(zaddr.Addr(0x10_0000+(i%4096)*32), hits[:0])
			}
		})
		b.Run("btb-insert/"+l.name, func(b *testing.B) {
			cfg := btb.BTB1Config
			cfg.StructLayout = structLayout
			t := btb.New(cfg)
			for i := 0; i < cfg.Capacity(); i++ {
				t.Insert(benchBTBEntry(i)) // warm, so the timed inserts evict
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Insert(benchBTBEntry(i))
			}
		})
		b.Run("pht-lookup/"+l.name, func(b *testing.B) {
			t := pht.NewLayout(pht.DefaultEntries, structLayout)
			var h history.History
			for i := 0; i < 64; i++ {
				h.RecordPrediction(zaddr.Addr(0x2000+i*6), i%2 == 0)
			}
			for i := 0; i < 4096; i++ {
				t.Update(&h, zaddr.Addr(0x4000+i*12), i%2 == 0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Lookup(&h, zaddr.Addr(0x4000+(i%4096)*12))
			}
		})
		b.Run("ctb-lookup/"+l.name, func(b *testing.B) {
			t := ctb.NewLayout(ctb.DefaultEntries, structLayout)
			var h history.History
			for i := 0; i < 64; i++ {
				h.RecordPrediction(zaddr.Addr(0x2000+i*6), true)
			}
			for i := 0; i < 4096; i++ {
				a := zaddr.Addr(0x4000 + i*12)
				t.Update(&h, a, a+64)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Lookup(&h, zaddr.Addr(0x4000+(i%4096)*12))
			}
		})
	}
}

func TestPerfstatMirrorsBenchmarks(t *testing.T) {
	want := capacitySweepUnits()
	got := perfstat.SweepUnitLabels()
	if len(got) != len(want) {
		t.Fatalf("perfstat sweep has %d units, benchmarks have %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i].Label {
			t.Errorf("unit %d: perfstat %q, benchmark %q", i, got[i], want[i].Label)
		}
	}
}
