package bulkpreload_test

// Parallel-pipeline engineering benchmarks: the BTB2 capacity sweep run
// through the serial oracle and through the work-stealing batched
// scheduler, plus the zero-alloc batch decoder in isolation. The
// flag-gated TestEmitParallelBenchJSON packages the same measurements
// as a machine-readable report:
//
//	go test -run TestEmitParallelBenchJSON -parallel-bench-out BENCH_parallel.json
//
// reporting records/sec for both paths, the parallel speedup, decoder
// throughput and steady-state allocations, and the scheduler's
// work-stealing accounting — with a differential check folded in so a
// "fast" report can never come from a diverged pipeline.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

var parallelBenchOut = flag.String("parallel-bench-out", "",
	"write the parallel pipeline benchmark report as JSON to this file (empty = skip)")

// capacitySweepUnits is the workload the parallel pipeline exists for:
// a Figure 5-style BTB2 capacity sweep, expressed as independent
// (config, trace) units. Base runs appear once per profile, exactly as
// sim.SweepBTB2Size dedups them.
func capacitySweepUnits() []sim.Unit {
	params := benchParams()
	rowCounts := []int{512, 1024, 2048, 4096, 8192}
	var units []sim.Unit
	for _, p := range benchSweepProfiles() {
		units = append(units, sim.ProfileUnit(p, core.OneLevelConfig(), params, "base"))
		for _, rows := range rowCounts {
			cfg := core.DefaultConfig()
			cfg.BTB2 = sim.BTB2Geometry(rows)
			units = append(units, sim.ProfileUnit(p, cfg, params, fmt.Sprintf("btb2-%drows", rows)))
		}
	}
	return units
}

func totalInstructions(res []engine.Result) int64 {
	var n int64
	for i := range res {
		n += res[i].Instructions
	}
	return n
}

// BenchmarkCapacitySweepSerialOracle is the single-threaded
// record-at-a-time reference path over the capacity sweep.
func BenchmarkCapacitySweepSerialOracle(b *testing.B) {
	units := capacitySweepUnits()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunUnitsSerial(units)
		if err != nil {
			b.Fatal(err)
		}
		insts = totalInstructions(res)
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkCapacitySweepParallel is the same sweep through the
// work-stealing batched pipeline at GOMAXPROCS workers.
func BenchmarkCapacitySweepParallel(b *testing.B) {
	units := capacitySweepUnits()
	ctx := context.Background()
	b.ResetTimer()
	var insts, steals int64
	for i := 0; i < b.N; i++ {
		res, stats, err := sim.RunUnitsStats(ctx, 0, units)
		if err != nil {
			b.Fatal(err)
		}
		insts = totalInstructions(res)
		steals += stats.Steals
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
}

// encodeBenchTrace serializes a generated workload to the ZBPT wire
// format in memory, returning the encoded bytes.
func encodeBenchTrace(tb testing.TB, insts int) []byte {
	tb.Helper()
	prof, err := workload.ByName("zos-daytrader-dbserv", insts)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Write(&buf, workload.New(prof)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkBatchDecode measures the bulk decoder's steady-state
// throughput and allocations per batch over an in-memory ZBPT stream.
// Each op is one full batch; the decoder rewind at EOF happens with the
// timer (and alloc accounting) stopped, so the reported allocs/op is
// the hot-path figure the zero-alloc gate pins at 0.
func BenchmarkBatchDecode(b *testing.B) {
	data := encodeBenchTrace(b, 200_000)
	br := bytes.NewReader(data)
	dec, err := trace.NewBatchDecoder(br, trace.DefaultBatchCapacity)
	if err != nil {
		b.Fatal(err)
	}
	batch := trace.NewBatch(trace.DefaultBatchCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	var records int64
	for i := 0; i < b.N; i++ {
		err := dec.Next(&batch)
		if err == io.EOF {
			b.StopTimer()
			if _, err := br.Seek(0, io.SeekStart); err != nil {
				b.Fatal(err)
			}
			if dec, err = trace.NewBatchDecoder(br, trace.DefaultBatchCapacity); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			err = dec.Next(&batch)
		}
		if err != nil {
			b.Fatal(err)
		}
		records += int64(len(batch.Ins))
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
}

// parallelBenchReport is the BENCH_parallel.json schema.
type parallelBenchReport struct {
	GeneratedAt           string  `json:"generated_at"`
	GOMAXPROCS            int     `json:"gomaxprocs"`
	Workers               int     `json:"workers"`
	Units                 int     `json:"units"`
	Steals                int64   `json:"steals"`
	Records               int64   `json:"records"`
	SerialSeconds         float64 `json:"serial_seconds"`
	ParallelSeconds       float64 `json:"parallel_seconds"`
	SerialRecordsPerSec   float64 `json:"serial_records_per_sec"`
	ParallelRecordsPerSec float64 `json:"parallel_records_per_sec"`
	Speedup               float64 `json:"speedup"`
	DecodeRecordsPerSec   float64 `json:"decode_records_per_sec"`
	DecodeAllocsPerBatch  float64 `json:"decode_allocs_per_batch"`
	DifferentialMismatch  int     `json:"differential_mismatches"`
}

// TestEmitParallelBenchJSON runs the capacity sweep through both paths
// once, cross-checks them with the differential comparator, measures
// decoder throughput and steady-state allocations, and writes the
// whole report to -parallel-bench-out. Skipped unless the flag is set,
// so the ordinary test run stays fast and file-free.
func TestEmitParallelBenchJSON(t *testing.T) {
	if *parallelBenchOut == "" {
		t.Skip("pass -parallel-bench-out=BENCH_parallel.json to emit the report")
	}
	units := capacitySweepUnits()
	ctx := context.Background()

	start := time.Now()
	serial, err := sim.RunUnitsSerial(units)
	if err != nil {
		t.Fatalf("serial oracle failed: %v", err)
	}
	serialSec := time.Since(start).Seconds()

	start = time.Now()
	parallel, stats, err := sim.RunUnitsStats(ctx, 0, units)
	if err != nil {
		t.Fatalf("parallel pipeline failed: %v", err)
	}
	parallelSec := time.Since(start).Seconds()

	mismatches := 0
	for i := range units {
		for _, d := range sim.DiffResults(units[i].Label, serial[i], parallel[i]) {
			t.Error(d)
			mismatches++
		}
	}

	// Decoder throughput: one full pass over an in-memory stream.
	data := encodeBenchTrace(t, 200_000)
	dec, err := trace.NewBatchDecoder(bytes.NewReader(data), trace.DefaultBatchCapacity)
	if err != nil {
		t.Fatal(err)
	}
	batch := trace.NewBatch(trace.DefaultBatchCapacity)
	var decoded int64
	start = time.Now()
	for {
		err := dec.Next(&batch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		decoded += int64(len(batch.Ins))
	}
	decodeSec := time.Since(start).Seconds()

	// Steady-state decoder allocations: one decoder over a stream long
	// enough that the measured runs never hit EOF.
	const allocRuns = 20
	allocCap := 64
	allocData := encodeBenchTrace(t, 4*allocRuns*allocCap)
	adec, err := trace.NewBatchDecoder(bytes.NewReader(allocData), allocCap)
	if err != nil {
		t.Fatal(err)
	}
	abatch := trace.NewBatch(allocCap)
	allocs := testing.AllocsPerRun(allocRuns, func() {
		if err := adec.Next(&abatch); err != nil {
			t.Fatal(err)
		}
	})

	rep := parallelBenchReport{
		GeneratedAt:           time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		Workers:               stats.Workers,
		Units:                 stats.Units,
		Steals:                stats.Steals,
		Records:               totalInstructions(serial),
		SerialSeconds:         serialSec,
		ParallelSeconds:       parallelSec,
		SerialRecordsPerSec:   float64(totalInstructions(serial)) / serialSec,
		ParallelRecordsPerSec: float64(totalInstructions(parallel)) / parallelSec,
		Speedup:               serialSec / parallelSec,
		DecodeRecordsPerSec:   float64(decoded) / decodeSec,
		DecodeAllocsPerBatch:  allocs,
		DifferentialMismatch:  mismatches,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*parallelBenchOut, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f records/s serial, %.0f records/s parallel (%.2fx, %d workers, %d steals), decode %.0f records/s at %.1f allocs/batch",
		*parallelBenchOut, rep.SerialRecordsPerSec, rep.ParallelRecordsPerSec,
		rep.Speedup, rep.Workers, rep.Steals, rep.DecodeRecordsPerSec, allocs)
}
