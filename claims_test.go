package bulkpreload_test

// Paper-claims verification: each test checks one claim from the paper's
// abstract/results against this reproduction, at shape level (direction,
// ordering, rough factor) with documented tolerances. These are the
// acceptance tests of the whole repository; EXPERIMENTS.md records the
// exact measured values.

import (
	"sync"
	"testing"

	"bulkpreload/internal/area"
	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/workload"
)

// claimInsts matches the experiment default: the biggest Table 4
// footprints need the full length to warm the 24k BTB1, or the
// effectiveness band distorts.
const claimInsts = 1_000_000

var (
	claimsFig2Once sync.Once
	claimsFig2     []sim.Comparison
)

// claimsFigure2 computes the Figure 2 comparison once and shares it
// across the claims tests (it is by far the most expensive input).
func claimsFigure2(t *testing.T) []sim.Comparison {
	t.Helper()
	claimsFig2Once.Do(func() {
		var err error
		claimsFig2, err = sim.Figure2(claimInsts, benchParams())
		if err != nil {
			t.Fatal(err)
		}
	})
	return claimsFig2
}

// Claim (abstract): "On the workloads analyzed in the simulation model,
// measurements show a maximum core performance benefit" — i.e. the BTB2
// helps every large-footprint trace, with a clear maximum well above the
// field's low end.
func TestClaimBTB2HelpsEveryTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	cs := claimsFigure2(t)
	min, max := 1e9, -1e9
	for _, c := range cs {
		imp := c.BTB2Improvement()
		if imp <= 0 {
			t.Errorf("%s: BTB2 improvement %.2f%% not positive", c.Trace, imp)
		}
		if imp < min {
			min = imp
		}
		if imp > max {
			max = imp
		}
	}
	if max < 3*min {
		t.Errorf("improvement spread too flat: min %.2f%%, max %.2f%% (paper spans ~2%%..13.8%%)", min, max)
	}
}

// Claim (§5.1): "BTB2 effectiveness compared to the large BTB1 varies
// from 16.6% to 83.4% with an average of 52%." Tolerances widened to the
// band our synthetic traces produce.
func TestClaimEffectivenessBand(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	cs := claimsFigure2(t)
	avg := sim.AverageEffectiveness(cs)
	if avg < 35 || avg > 90 {
		t.Errorf("average effectiveness %.1f%% outside [35, 90] (paper: 52%%)", avg)
	}
	for _, c := range cs {
		if eff := c.Effectiveness(); eff < 5 || eff > 125 {
			t.Errorf("%s: effectiveness %.1f%% outside sanity band", c.Trace, eff)
		}
	}
}

// Claim (§5.1): the unrealistically large BTB1 bounds the BTB2's benefit
// from above on (essentially) every trace: the BTB2 is an approximation
// of that capacity, not more.
func TestClaimLargeBTB1IsCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	for _, c := range claimsFigure2(t) {
		if c.BTB2Improvement() > c.LargeImprovement()+1.0 {
			t.Errorf("%s: BTB2 (%.2f%%) exceeds the large-BTB1 ceiling (%.2f%%) beyond noise",
				c.Trace, c.BTB2Improvement(), c.LargeImprovement())
		}
	}
}

// Claim (Figure 4): "a large portion of the branch penalty is due to
// branch prediction capacity rather than ... algorithms", and "Adding
// the BTB2 reduces the number of capacity bad surprise branches" by
// roughly two-thirds (21.9% -> 8.1%).
func TestClaimCapacityRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	prof, err := workload.ByName("zos-daytrader-dbserv", claimInsts)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.New(prof)
	base := engine.Run(src, core.OneLevelConfig(), benchParams(), "c1")
	with := engine.Run(src, core.DefaultConfig(), benchParams(), "c2")

	capBase := base.Outcomes.Rate(stats.BadSurpriseCapacity)
	capWith := with.Outcomes.Rate(stats.BadSurpriseCapacity)
	// Capacity must be the largest bad-surprise class without the BTB2.
	if capBase < base.Outcomes.Rate(stats.BadSurpriseLatency) {
		t.Errorf("capacity (%.1f%%) below latency class — not a capacity-bound trace", 100*capBase)
	}
	// And the BTB2 must remove at least 40% of it (paper: 63%).
	if capWith > 0.6*capBase {
		t.Errorf("BTB2 recovered only %.0f%% of capacity surprises (paper: ~63%%)",
			100*(1-capWith/capBase))
	}
	// Total bad outcomes must drop.
	if with.Outcomes.BadRate() >= base.Outcomes.BadRate() {
		t.Error("BTB2 did not reduce total bad outcomes")
	}
}

// Claim (Figure 3): the hardware measurement is smaller than the
// simulation's because the simulation treats L2+ as infinite. ("This is
// expected because only the first level ... caches were modeled as
// finite in the simulation.")
func TestClaimHardwareGainSmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	rows, err := sim.Figure3(claimInsts/2, benchParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SimGain <= 0 {
			t.Errorf("%s: no simulated gain", r.Name)
		}
		if r.HardwareGain > r.SimGain {
			t.Errorf("%s: hardware gain %.2f%% exceeds simulation gain %.2f%%",
				r.Name, r.HardwareGain, r.SimGain)
		}
	}
}

// Claim (§3.1): "the first level predictor consisting of the BTB1 and
// BTBP is estimated to cover a footprint of 114 KB - 142.5 KB" — exact
// arithmetic.
func TestClaimFootprintEstimate(t *testing.T) {
	lo, hi := core.DefaultConfig().EstimatedFootprint()
	if float64(lo)/1024 != 114.0 || float64(hi)/1024 != 142.5 {
		t.Errorf("footprint estimate %.1f-%.1f KB, want 114-142.5", float64(lo)/1024, float64(hi)/1024)
	}
}

// Claim (Figure 7): three trackers capture nearly all of the benefit —
// the shipping choice.
func TestClaimThreeTrackersSuffice(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	profiles := benchSweepProfiles()
	pts, err := sim.SweepTrackers(profiles, benchParams(), []int{1, 3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Improvement <= pts[0].Improvement-0.3 {
		t.Errorf("3 trackers (%.2f%%) not better than 1 (%.2f%%)",
			pts[1].Improvement, pts[0].Improvement)
	}
	if pts[2].Improvement-pts[1].Improvement > 0.5 {
		t.Errorf("8 trackers (%.2f%%) leave >0.5%% over 3 (%.2f%%) — paper found 3 sufficient",
			pts[2].Improvement, pts[1].Improvement)
	}
}

// Claim (Figure 5): more BTB2 capacity never hurts on capacity-bound
// workloads (monotone non-decreasing within noise).
func TestClaimBTB2SizeMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	pts, err := sim.SweepBTB2Size(benchSweepProfiles(), benchParams(), []int{512, 2048, 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Improvement < pts[i-1].Improvement-0.4 {
			t.Errorf("size sweep not monotone: %s %.2f%% after %s %.2f%%",
				pts[i].Label, pts[i].Improvement, pts[i-1].Label, pts[i-1].Improvement)
		}
	}
}

// Claim (§1/§6): the two-level hierarchy achieves "the performance
// benefit of a very large capacity predictor with minimal impact on
// latency and power" — asserted via the area/energy model: same CPI
// class as the big BTB1 at lower total BTB energy.
func TestClaimEnergyAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite in -short mode")
	}
	prof, err := workload.ByName("zos-daytrader-dbserv", claimInsts)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg core.Config) (float64, float64) {
		r := engine.Run(workload.New(prof), cfg, benchParams(), "x")
		e := areaEnergy(cfg, r)
		return r.CPI(), e
	}
	cpiTwo, eTwo := run(core.DefaultConfig())
	cpiBig, eBig := run(core.LargeOneLevelConfig())
	if eTwo >= eBig {
		t.Errorf("two-level BTB energy %.1f uJ not below big-BTB1 %.1f uJ", eTwo/1e6, eBig/1e6)
	}
	// CPI within 5% of the big predictor's.
	if cpiTwo > cpiBig*1.05 {
		t.Errorf("two-level CPI %.4f more than 5%% above big-BTB1 %.4f", cpiTwo, cpiBig)
	}
}

// areaEnergy computes a run's total BTB energy in pJ.
func areaEnergy(cfg core.Config, r engine.Result) float64 {
	e := area.EstimateEnergy(cfg, area.AccessCounts{
		BTB1: r.BTB1, BTBP: r.BTBP, BTB2: r.BTB2,
	}, area.SRAM, r.Cycles, float64(r.Tracker.RowsRead))
	return e.TotalPJ()
}
